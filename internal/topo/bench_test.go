package topo

import (
	"testing"

	"breakband/internal/fabric"
	"breakband/internal/sim"
)

// benchmarkForward measures the raw switch path: a closed-loop window of
// frames from host src to host dst, each delivery immediately injecting
// the next frame, so the fabric stays saturated without growing the event
// queue. ns/op is the cost of one full path traversal (every hop's
// queueing, credit and serialization events included).
func benchmarkForward(b *testing.B, spec Spec, hosts, src, dst int) {
	b.ReportAllocs()
	k := sim.NewKernel()
	fab := NewFabric(k, fabric.DefaultConfig(), spec, hosts)
	const window = 32
	sent, delivered := 0, 0
	send := func() {
		f := fab.NewFrame()
		f.Kind = fabric.Data
		f.Src = src
		f.Dst = dst
		f.Bytes = 256
		fab.Send(f)
		sent++
	}
	for i := 0; i < hosts; i++ {
		if i == dst {
			fab.Attach(i, rxFunc(func(f *fabric.Frame) {
				delivered++
				f.Release()
				if sent < b.N {
					send()
				}
			}))
			continue
		}
		fab.Attach(i, rxFunc(func(f *fabric.Frame) { f.Release() }))
	}
	b.ResetTimer()
	k.At(0, func() {
		for i := 0; i < window && i < b.N; i++ {
			send()
		}
	})
	k.Run()
	b.StopTimer()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d frames", delivered, b.N)
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(k.Fired())/sec, "events/sec")
	}
}

// BenchmarkStarForward crosses the single switch (two port hops).
func BenchmarkStarForward(b *testing.B) {
	benchmarkForward(b, Spec{Kind: SingleSwitch}, 4, 0, 3)
}

// BenchmarkFatTreeCrossLeaf crosses leaf -> spine -> leaf (four port
// hops), the longest path the compiled Clos has.
func BenchmarkFatTreeCrossLeaf(b *testing.B) {
	benchmarkForward(b, Spec{Kind: FatTree}, 8, 0, 7)
}
