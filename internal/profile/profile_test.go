package profile

import (
	"math"
	"testing"

	"breakband/internal/rng"
	"breakband/internal/sim"
	"breakband/internal/units"
	"breakband/internal/vtimer"
)

func harness() (*sim.Kernel, *Profiler) {
	k := sim.NewKernel()
	tm := vtimer.New(k, 1e12, rng.FixedNs(15), rng.FixedNs(34.69), nil)
	return k, New(tm)
}

func TestCalibration(t *testing.T) {
	k, pr := harness()
	k.Spawn("cal", func(p *sim.Proc) {
		sum := pr.Calibrate(p, 100)
		if math.Abs(sum.Mean-49.69) > 1e-9 {
			t.Errorf("calibrated overhead = %v, want 49.69", sum.Mean)
		}
		if sum.Std != 0 {
			t.Errorf("deterministic calibration std = %v", sum.Std)
		}
	})
	k.Run()
	k.Shutdown()
	if pr.Overhead() != units.Nanoseconds(49.69) {
		t.Errorf("stored overhead = %v", pr.Overhead())
	}
}

func TestCalibrationNoisy(t *testing.T) {
	k := sim.NewKernel()
	r := rng.New(7)
	tm := vtimer.New(k, 1e12, rng.LogNormalNs(15, 0.03), rng.LogNormalNs(34.69, 0.03), r)
	pr := New(tm)
	k.Spawn("cal", func(p *sim.Proc) {
		sum := pr.Calibrate(p, 1000)
		// The paper reports 49.69 mean, sigma 1.48 over 1000 samples.
		if math.Abs(sum.Mean-49.69) > 0.5 {
			t.Errorf("noisy calibration mean = %v", sum.Mean)
		}
		if sum.Std <= 0 || sum.Std > 3 {
			t.Errorf("noisy calibration std = %v", sum.Std)
		}
	})
	k.Run()
	k.Shutdown()
}

func TestOverheadRemoval(t *testing.T) {
	k, pr := harness()
	k.Spawn("m", func(p *sim.Proc) {
		pr.Calibrate(p, 10)
		d := pr.Measure(p, "region", func() {
			p.Sleep(units.Nanoseconds(175.42))
		})
		if math.Abs(d.Ns()-175.42) > 1e-9 {
			t.Errorf("measured %v, want 175.42 after overhead removal", d.Ns())
		}
	})
	k.Run()
	k.Shutdown()
	if got := pr.MeanNs("region"); math.Abs(got-175.42) > 1e-9 {
		t.Errorf("recorded mean = %v", got)
	}
}

func TestWithoutCalibrationIncludesOverhead(t *testing.T) {
	k, pr := harness()
	k.Spawn("m", func(p *sim.Proc) {
		d := pr.Measure(p, "raw", func() { p.Sleep(100 * units.Nanosecond) })
		want := 100 + 49.69
		if math.Abs(d.Ns()-want) > 1e-9 {
			t.Errorf("uncalibrated measurement = %v, want %v", d.Ns(), want)
		}
	})
	k.Run()
	k.Shutdown()
}

func TestNegativeClamp(t *testing.T) {
	k, pr := harness()
	k.Spawn("m", func(p *sim.Proc) {
		pr.Calibrate(p, 10)
		// An empty region measures ~0 after subtraction, never negative.
		d := pr.Measure(p, "empty", func() {})
		if d < 0 {
			t.Errorf("measured negative duration %v", d)
		}
	})
	k.Run()
	k.Shutdown()
}

func TestEndAs(t *testing.T) {
	k, pr := harness()
	k.Spawn("m", func(p *sim.Proc) {
		pr.Calibrate(p, 10)
		tok := pr.BeginAnon(p)
		p.Sleep(50 * units.Nanosecond)
		pr.EndAs(p, tok, "late_named")
	})
	k.Run()
	k.Shutdown()
	if math.Abs(pr.MeanNs("late_named")-50) > 1e-9 {
		t.Errorf("EndAs mean = %v", pr.MeanNs("late_named"))
	}
}

func TestNamesAndReset(t *testing.T) {
	k, pr := harness()
	k.Spawn("m", func(p *sim.Proc) {
		pr.Measure(p, "a", func() {})
		pr.Measure(p, "b", func() {})
		pr.Measure(p, "a", func() {})
	})
	k.Run()
	k.Shutdown()
	names := pr.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
	if pr.Sample("a").N() != 2 {
		t.Errorf("scope a has %d samples", pr.Sample("a").N())
	}
	pr.Reset()
	if pr.Sample("a") != nil || len(pr.Names()) != 0 {
		t.Error("Reset did not clear samples")
	}
}

func TestMeanNsPanicsOnUnknown(t *testing.T) {
	_, pr := harness()
	defer func() {
		if recover() == nil {
			t.Error("MeanNs on unknown scope did not panic")
		}
	}()
	pr.MeanNs("nope")
}

func TestCalibrateRequiresSamples(t *testing.T) {
	k, pr := harness()
	k.Spawn("m", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Calibrate(0) did not panic")
			}
		}()
		pr.Calibrate(p, 0)
	})
	k.Run()
	k.Shutdown()
}
