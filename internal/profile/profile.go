// Package profile reimplements the UCS-style scoped profiling the paper uses
// to attribute time to software components.
//
// A measurement wraps a region of simulated software with two timer reads.
// The raw delta includes part of the timer infrastructure's own cost; the
// profiler calibrates that overhead with empty regions (the paper reports
// 49.69 ns, sigma 1.48 over 1000 samples) and subtracts the calibrated mean
// from every subsequent measurement, exactly as the paper describes.
package profile

import (
	"fmt"

	"breakband/internal/sim"
	"breakband/internal/stats"
	"breakband/internal/units"
	"breakband/internal/vtimer"
)

// Profiler collects named scoped measurements on top of a virtual timer.
type Profiler struct {
	timer    *vtimer.Timer
	overhead units.Time // calibrated mean overhead, subtracted per sample
	calib    stats.Summary
	samples  map[string]*stats.Sample
	order    []string
}

// New returns a profiler with zero calibrated overhead. Call Calibrate before
// taking measurements that should match the paper's methodology.
func New(t *vtimer.Timer) *Profiler {
	return &Profiler{timer: t, samples: make(map[string]*stats.Sample)}
}

// Timer exposes the underlying virtual timer.
func (pr *Profiler) Timer() *vtimer.Timer { return pr.timer }

// Overhead reports the calibrated per-measurement overhead being subtracted.
func (pr *Profiler) Overhead() units.Time { return pr.overhead }

// Calibration reports the summary of the most recent calibration run
// (nanoseconds).
func (pr *Profiler) Calibration() stats.Summary { return pr.calib }

// Calibrate measures n empty regions back to back from proc p and stores the
// mean raw delta as the overhead to subtract. It returns the calibration
// summary in nanoseconds (mean ~= the paper's 49.69 ns for the default
// configuration).
func (pr *Profiler) Calibrate(p sim.Ctx, n int) stats.Summary {
	if n <= 0 {
		panic("profile: calibration needs at least one sample")
	}
	var s stats.Sample
	for i := 0; i < n; i++ {
		t1 := pr.timer.Read(p)
		t2 := pr.timer.Read(p)
		s.Add(pr.timer.TicksToTime(t2 - t1).Ns())
	}
	pr.calib = s.Summarize()
	pr.overhead = units.Nanoseconds(pr.calib.Mean)
	return pr.calib
}

// Token is an open measurement started with Begin.
type Token struct {
	name string
	t1   uint64
}

// Begin opens a measurement scope named name. The timer read costs simulated
// time, perturbing the measured system exactly as real instrumentation does;
// the measurement methodology therefore profiles one component at a time
// (paper §3).
func (pr *Profiler) Begin(p sim.Ctx, name string) Token {
	return Token{name: name, t1: pr.timer.Read(p)}
}

// End closes a measurement scope, recording the overhead-corrected duration
// in nanoseconds. It returns the corrected duration.
func (pr *Profiler) End(p sim.Ctx, tok Token) units.Time {
	t2 := pr.timer.Read(p)
	raw := pr.timer.TicksToTime(t2 - tok.t1)
	d := raw - pr.overhead
	if d < 0 {
		d = 0
	}
	pr.record(tok.name, d)
	return d
}

// BeginAnon opens a measurement whose scope name is chosen at EndAs time,
// for call sites whose outcome determines the category (e.g. a post attempt
// that may turn out to be a busy post).
func (pr *Profiler) BeginAnon(p sim.Ctx) Token {
	return Token{t1: pr.timer.Read(p)}
}

// EndAs closes a measurement under the given scope name.
func (pr *Profiler) EndAs(p sim.Ctx, tok Token, name string) units.Time {
	tok.name = name
	return pr.End(p, tok)
}

// Measure profiles fn as a single scope under name and returns the corrected
// duration.
func (pr *Profiler) Measure(p sim.Ctx, name string, fn func()) units.Time {
	tok := pr.Begin(p, name)
	fn()
	return pr.End(p, tok)
}

func (pr *Profiler) record(name string, d units.Time) {
	s, ok := pr.samples[name]
	if !ok {
		s = &stats.Sample{}
		pr.samples[name] = s
		pr.order = append(pr.order, name)
	}
	s.Add(d.Ns())
}

// Sample returns the accumulated sample for name, or nil if none exists.
func (pr *Profiler) Sample(name string) *stats.Sample { return pr.samples[name] }

// MeanNs reports the mean measured duration for name in nanoseconds. It
// panics if the scope has no samples, which always indicates a methodology
// bug.
func (pr *Profiler) MeanNs(name string) float64 {
	s := pr.samples[name]
	if s == nil || s.N() == 0 {
		panic(fmt.Sprintf("profile: no samples for scope %q", name))
	}
	return s.Mean()
}

// Names lists scope names in first-recorded order.
func (pr *Profiler) Names() []string {
	out := make([]string, len(pr.order))
	copy(out, pr.order)
	return out
}

// Reset discards all recorded samples but keeps the calibration.
func (pr *Profiler) Reset() {
	pr.samples = make(map[string]*stats.Sample)
	pr.order = nil
}
