package model

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func close2(got, want float64) bool { return math.Abs(got-want) < 0.005 }

// TestPaperGoldenValues pins every §4/§6 model quantity against the numbers
// printed in the paper.
func TestPaperGoldenValues(t *testing.T) {
	c := Paper()
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"LLP_post misc", c.LLPPostMisc(), 14.99},
		{"Network", c.Network(), 382.81},
		{"LLP Misc", c.LLPMisc(), 58.68},
		{"Equation 1 (LLP injection)", c.LLPInjection(), 295.73},
		{"LLP latency model", c.LLPLatency(), 1135.80},
		{"HLP_post", c.HLPPost(), 26.56},
		{"Post", c.Post(), 201.98},
		{"Post_prog", c.PostProg(), 59.82},
		{"Equation 2 (overall injection)", c.OverallInjection(), 264.97},
		{"HLP_rx_prog", c.HLPRxProg(), 224.66},
		{"E2E latency model", c.E2ELatency(), 1387.02},
		{"RX progress", c.RxProg(), 286.29},
	}
	for _, cse := range cases {
		if !close2(cse.got, cse.want) {
			t.Errorf("%s = %.4f, want %.2f", cse.name, cse.got, cse.want)
		}
	}
}

func TestPostProgSplit(t *testing.T) {
	c := Paper()
	// "Less than a nanosecond of Post_prog occurs in the LLP" (§6).
	if c.LLPTxProg >= 1 {
		t.Errorf("LLP share of Post_prog = %v, want < 1 ns", c.LLPTxProg)
	}
	if !close2(c.LLPTxProg, 61.63/64) {
		t.Errorf("LLP share = %v, want 61.63/64", c.LLPTxProg)
	}
}

func TestRxProgRatio(t *testing.T) {
	c := Paper()
	// Insight 4: receive progress is 4.78x the send progress.
	ratio := c.RxProg() / c.PostProg()
	if math.Abs(ratio-4.78) > 0.02 {
		t.Errorf("RX/TX progress ratio = %.3f, want ~4.78", ratio)
	}
}

func TestGenCompletionAndPollBound(t *testing.T) {
	c := Paper()
	// gen_completion = 2*(PCIe + Network) + RC-to-MEM(64B).
	want := 2*(137.49+382.81) + 240.96
	if !close2(c.GenCompletion(), want) {
		t.Errorf("gen_completion = %v, want %v", c.GenCompletion(), want)
	}
	// p >= gen_completion / LLP_post = 7.47 -> 8; the benchmark's
	// poll-every-16 satisfies it (paper §4.2).
	if c.MinPollPeriod() != 8 {
		t.Errorf("p_min = %d, want 8", c.MinPollPeriod())
	}
}

func TestValidate(t *testing.T) {
	v := Validate("x", 295.73, 282.33)
	if math.Abs(v.ErrPct-4.746) > 0.01 {
		t.Errorf("error pct = %v", v.ErrPct)
	}
	if !v.Within(5) || v.Within(4) {
		t.Errorf("Within thresholds wrong for %v", v.ErrPct)
	}
	if !strings.Contains(v.String(), "295.73") {
		t.Error("validation string missing values")
	}
	// Negative direction.
	v2 := Validate("y", 1135.8, 1190.25)
	if v2.ErrPct >= 0 {
		t.Error("underestimate should give negative error")
	}
}

func TestPaperValidationsWithinFivePercent(t *testing.T) {
	c := Paper()
	checks := []struct {
		name     string
		modeled  float64
		observed float64
	}{
		{"LLP injection", c.LLPInjection(), 282.33},
		{"LLP latency", c.LLPLatency(), 1190.25},
		{"overall injection", c.OverallInjection(), 263.91},
		{"E2E latency", c.E2ELatency(), 1336},
	}
	for _, ch := range checks {
		if !Validate(ch.name, ch.modeled, ch.observed).Within(5) {
			t.Errorf("%s: paper's own validation exceeds 5%%?!", ch.name)
		}
	}
}

func TestQuickModelAdditivity(t *testing.T) {
	// Property: the E2E model is exactly the LLP model plus the HLP
	// terms, for any component values.
	f := func(raw [8]uint16) bool {
		c := Paper()
		c.LLPPost = float64(raw[0]%2000) + 1
		c.LLPProg = float64(raw[1]%2000) + 1
		c.PCIe = float64(raw[2]%2000) + 1
		c.Wire = float64(raw[3]%2000) + 1
		c.Switch = float64(raw[4] % 2000)
		c.RCToMem8 = float64(raw[5]%2000) + 1
		c.HLPPostMPICH = float64(raw[6]%500) + 1
		c.MPICHRecvCB = float64(raw[7]%500) + 1
		lhs := c.E2ELatency()
		rhs := c.HLPPost() + c.LLPLatency() + c.HLPRxProg()
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickInjectionMonotone(t *testing.T) {
	// Property: increasing any CPU component never decreases the
	// injection model.
	f := func(extraRaw uint16) bool {
		base := Paper()
		c := base
		c.LLPPost += float64(extraRaw % 1000)
		return c.LLPInjection() >= base.LLPInjection() &&
			c.OverallInjection() >= base.OverallInjection()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
