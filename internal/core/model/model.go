// Package model implements the paper's primary contribution: the analytical
// models of injection overhead (§4.2, Equation 1; §6, Equation 2) and
// end-to-end latency (§4.3, §6), assembled from measured component times.
//
// The models are pure arithmetic over a Components table. Feeding them the
// paper's Table 1 reproduces the paper's numbers exactly (golden tests);
// feeding them the table measured inside the simulator (internal/measure)
// validates the full methodology against observed benchmark performance.
package model

import (
	"fmt"
	"math"

	"breakband/internal/config"
)

// Components holds measured mean component times in nanoseconds — the
// reproduction of the paper's Table 1 plus the §6 progress quantities.
type Components struct {
	// --- LLP (§4.1) ---
	MDSetup    float64 // message descriptor setup
	BarrierMD  float64 // store barrier after the MD
	BarrierDBC float64 // store barrier after the DoorBell counter
	PIOCopy    float64 // 64-byte PIO copy to device memory
	LLPPost    float64 // total uct_ep_put_short
	LLPProg    float64 // dequeuing one CQ entry
	BusyPost   float64 // failed post against a full TxQ
	MeasUpdate float64 // benchmark measurement update

	// --- I/O and network (§4.2, §4.3) ---
	PCIe     float64 // one-way RC<->NIC for a 64-byte payload
	Wire     float64 // interconnect cable, one way
	Switch   float64 // switch forwarding overhead
	RCToMem8 float64 // RC committing an 8-byte payload to memory
	// RCToMem64 is the 64-byte completion's commit time. The paper does
	// not report it separately; the cache-line argument (both writes
	// touch one line) sets it equal to RCToMem8 by default.
	RCToMem64 float64

	// --- HLP (§5, §6) ---
	HLPPostMPICH float64 // MPI_Isend time spent in MPICH
	HLPPostUCP   float64 // MPI_Isend time spent in UCP
	MPICHRecvCB  float64 // registered MPICH callback for a completed MPI_Irecv
	UCPRecvCB    float64 // registered UCP callback (own work, excl. nested MPICH cb)
	MPICHAfterPr float64 // MPICH work after a successful ucp_worker_progress
	WaitMPICH    float64 // successful MPI_Wait time attributed to MPICH
	WaitUCP      float64 // successful MPI_Wait time attributed to UCP

	HLPTxProg float64 // per-op HLP share of send progress (§6)
	LLPTxProg float64 // per-op LLP share (LLP_prog amortized over c ops)
	MiscPerOp float64 // busy posts amortized per op (§6)

	// SignalPeriod is the unsignaled-completion period c.
	SignalPeriod int
}

// Paper returns the Components table populated from the paper's Table 1 —
// the golden reference.
func Paper() Components {
	return Components{
		MDSetup:    config.TabMDSetup,
		BarrierMD:  config.TabBarrierMD,
		BarrierDBC: config.TabBarrierDBC,
		PIOCopy:    config.TabPIOCopy,
		LLPPost:    config.TabLLPPost,
		LLPProg:    config.TabLLPProg,
		BusyPost:   config.TabBusyPost,
		MeasUpdate: config.TabMeasUpdate,

		PCIe:      config.TabPCIe,
		Wire:      config.TabWire,
		Switch:    config.TabSwitch,
		RCToMem8:  config.TabRCToMem8,
		RCToMem64: config.TabRCToMem8,

		HLPPostMPICH: config.TabMPIIsendMPICH,
		HLPPostUCP:   config.TabMPIIsendUCP,
		MPICHRecvCB:  config.TabMPICHRecvCB,
		UCPRecvCB:    config.TabUCPRecvCB,
		MPICHAfterPr: config.TabMPICHAfterProg,
		WaitMPICH:    config.TabMPIWaitMPICH,
		WaitUCP:      config.TabMPIWaitUCP,

		HLPTxProg: config.TabHLPTxProgPerOp,
		LLPTxProg: config.TabLLPProg / 64,
		MiscPerOp: 3.17,

		SignalPeriod: 64,
	}
}

// LLPPostMisc is the §4.1 residual: the function-call overhead and branching
// not covered by the four named categories (Table 1: "Miscellaneous in
// LLP_post").
func (c Components) LLPPostMisc() float64 {
	return c.LLPPost - c.MDSetup - c.BarrierMD - c.BarrierDBC - c.PIOCopy
}

// Network is the total one-way interconnect time (Wire + Switch).
func (c Components) Network() float64 { return c.Wire + c.Switch }

// LLPMisc is the §4.2 per-message miscellaneous overhead of the put_bw loop:
// one busy post plus the measurement update.
func (c Components) LLPMisc() float64 { return c.BusyPost + c.MeasUpdate }

// GenCompletion models the time from a post reaching the NIC to its
// completion being visible in memory (§4.2): two PCIe and two Network
// traversals (message out, ACK back) plus the 64-byte completion write.
func (c Components) GenCompletion() float64 {
	return 2*(c.PCIe+c.Network()) + c.RCToMem64
}

// MinPollPeriod is the §4.2 lower bound on p, the number of posts between
// polls, for completions to be ready when polled: p >= gen_completion /
// LLP_post.
func (c Components) MinPollPeriod() int {
	return int(math.Ceil(c.GenCompletion() / c.LLPPost))
}

// LLPInjection is Equation 1: the injection overhead observed by the NIC
// when a single core posts continuously through the LLP,
// LLP_post + LLP_prog + Misc.
func (c Components) LLPInjection() float64 {
	return c.LLPPost + c.LLPProg + c.LLPMisc()
}

// LLPLatency is the §4.3 latency model for an x-byte message with
// send-receive semantics and minimal software:
// LLP_post + 2*PCIe + Network + RC-to-MEM(x) + LLP_prog.
// Only x = 8 is calibrated; other sizes reuse RCToMem8 (one cache line).
func (c Components) LLPLatency() float64 {
	return c.LLPPost + 2*c.PCIe + c.Network() + c.RCToMem8 + c.LLPProg
}

// HLPPost is the HLP's share of initiating a message (MPI_Isend above the
// LLP): MPICH + UCP.
func (c Components) HLPPost() float64 { return c.HLPPostMPICH + c.HLPPostUCP }

// Post is the total initiation time, HLP_post + LLP_post (§6).
func (c Components) Post() float64 { return c.HLPPost() + c.LLPPost }

// PostProg is the per-operation progress overhead of a send (§6),
// HLP_tx_prog + the amortized LLP share.
func (c Components) PostProg() float64 { return c.HLPTxProg + c.LLPTxProg }

// OverallInjection is Equation 2: Post + Post_prog + Misc.
func (c Components) OverallInjection() float64 {
	return c.Post() + c.PostProg() + c.MiscPerOp
}

// HLPRxProg is the §6 receive-progress overhead of the HLP: both registered
// callbacks plus the MPICH work after a successful progress.
func (c Components) HLPRxProg() float64 {
	return c.MPICHRecvCB + c.UCPRecvCB + c.MPICHAfterPr
}

// E2ELatency is the §6 end-to-end latency model:
// HLP_post + LLP_post + 2*PCIe + Network + RC-to-MEM + LLP_prog +
// HLP_rx_prog. (MPI_Irecv initiation overlaps and is excluded.)
func (c Components) E2ELatency() float64 {
	return c.HLPPost() + c.LLPLatency() + c.HLPRxProg()
}

// RxProg is the total receive-progress time, LLP + HLP (Figure 14's "RX
// Progress" bar).
func (c Components) RxProg() float64 { return c.LLPProg + c.HLPRxProg() }

// Validation compares a modeled quantity with an observed one.
type Validation struct {
	Name       string
	ModeledNs  float64
	ObservedNs float64
	// ErrPct is signed: positive when the model overestimates.
	ErrPct float64
}

// Validate builds a Validation record.
func Validate(name string, modeled, observed float64) Validation {
	return Validation{
		Name:       name,
		ModeledNs:  modeled,
		ObservedNs: observed,
		ErrPct:     (modeled - observed) / observed * 100,
	}
}

// Within reports whether the model error is within pct percent.
func (v Validation) Within(pct float64) bool { return math.Abs(v.ErrPct) <= pct }

// String implements fmt.Stringer.
func (v Validation) String() string {
	return fmt.Sprintf("%-22s modeled %8.2f ns, observed %8.2f ns, error %+5.2f%%",
		v.Name, v.ModeledNs, v.ObservedNs, v.ErrPct)
}
