// Package core groups the paper's analytical contribution: the component
// models (core/model), the breakdown figures (core/breakdown) and the
// what-if optimization analysis (core/whatif). It deliberately contains no
// simulator code — the models are pure arithmetic over measured component
// tables, exactly as in the paper.
package core
