package whatif

import (
	"math"
	"testing"
	"testing/quick"

	"breakband/internal/core/model"
)

func TestPaperQuotedSpeedups(t *testing.T) {
	c := model.Paper()
	cases := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		// §7.1: "a 20% reduction in overhead in the HLP can speedup
		// injection by up to 6.44%".
		{"HLP -20% injection", Speedup(c.HLPPost()+c.HLPTxProg, c.OverallInjection(), 0.20), 6.44, 0.01},
		// "...while that in the LLP can do so by up to 13.33%".
		{"LLP -20% injection", Speedup(c.LLPPost+c.LLPTxProg, c.OverallInjection(), 0.20), 13.33, 0.05},
		// §7.2: switch to 30 ns read at the 70% grid point: 5.45%.
		{"Switch -70% latency", Speedup(c.Switch, c.E2ELatency(), 0.70), 5.45, 0.01},
		// §7.1 PIO: 84% reduction -> injection improves by more than 25%.
		{"PIO -84% injection", Speedup(c.PIOCopy, c.OverallInjection(), 0.84), 29.88, 0.05},
		// and latency by more than 5%.
		{"PIO -84% latency", Speedup(c.PIOCopy, c.E2ELatency(), 0.84), 5.71, 0.05},
		// §7.1 integrated NIC: 50% I/O reduction -> over 15%.
		{"IO -50% latency", Speedup(2*c.PCIe+c.RCToMem8, c.E2ELatency(), 0.50), 18.60, 0.05},
	}
	for _, cs := range cases {
		if math.Abs(cs.got-cs.want) > cs.tol {
			t.Errorf("%s = %.3f%%, want %.2f%%", cs.name, cs.got, cs.want)
		}
	}
}

func TestPaperThresholdClaims(t *testing.T) {
	c := model.Paper()
	// "over a 15% improvement ... with a modest 50% reduction in I/O".
	if s := Speedup(2*c.PCIe+c.RCToMem8, c.E2ELatency(), 0.50); s <= 15 {
		t.Errorf("integrated NIC at 50%% = %.2f%%, paper claims >15%%", s)
	}
	// PIO to 15 ns: injection > 25%, latency > 5%.
	if s := Speedup(c.PIOCopy, c.OverallInjection(), 0.84); s <= 25 {
		t.Errorf("PIO injection speedup = %.2f%%", s)
	}
	if s := Speedup(c.PIOCopy, c.E2ELatency(), 0.84); s <= 5 {
		t.Errorf("PIO latency speedup = %.2f%%", s)
	}
	// 20% software reductions keep latency speedup under 5% (the paper's
	// pessimism about software engineering).
	if s := Speedup(c.HLPPost()+c.HLPRxProg(), c.E2ELatency(), 0.20); s >= 5 {
		t.Errorf("HLP -20%% latency = %.2f%%, paper says <5%%", s)
	}
}

func TestFig17Assemblies(t *testing.T) {
	c := model.Paper()
	a := Fig17aCPUInjection(c)
	if len(a) != 7 || a[0].Name != "HLP" || a[1].Name != "LLP" {
		t.Errorf("fig17a series: %+v", names(a))
	}
	b := Fig17bCPULatency(c)
	if len(b) != 7 || b[2].Name != "HLP_rx_prog" {
		t.Errorf("fig17b series: %+v", names(b))
	}
	io := Fig17cIOLatency(c)
	if len(io) != 3 || io[0].Name != "Integrated NIC" {
		t.Errorf("fig17c series: %+v", names(io))
	}
	n := Fig17dNetworkLatency(c)
	if len(n) != 2 {
		t.Errorf("fig17d series: %+v", names(n))
	}
	// Every series uses the paper's five-step x axis by default.
	for _, s := range a {
		if len(s.Reductions) != 5 || s.Reductions[0] != 0.10 || s.Reductions[4] != 0.90 {
			t.Errorf("series %s reductions = %v", s.Name, s.Reductions)
		}
	}
	// Fig17a's top curve at 90% reaches ~60% (the paper's y-axis limit).
	if top := a[1].SpeedupPct[4]; math.Abs(top-59.9) > 0.5 {
		t.Errorf("LLP at 90%% = %.2f%%, want ~59.9%%", top)
	}
}

func names(ss []Series) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}

func TestRatio(t *testing.T) {
	if math.Abs(Ratio(50)-2) > 1e-12 {
		t.Errorf("Ratio(50%%) = %v, want 2x", Ratio(50))
	}
	if math.Abs(Ratio(0)-1) > 1e-12 {
		t.Error("Ratio(0) != 1")
	}
}

func TestQuickLinearity(t *testing.T) {
	// Property: speedup is linear in the reduction (the paper's §7
	// observation that the curves are linear).
	f := func(compRaw, totRaw uint16, aRaw, bRaw uint8) bool {
		comp := float64(compRaw%1000) + 1
		tot := comp + float64(totRaw%2000) + 1
		a := float64(aRaw%50) / 100
		b := float64(bRaw%50) / 100
		lhs := Speedup(comp, tot, a+b)
		rhs := Speedup(comp, tot, a) + Speedup(comp, tot, b)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMonotoneAndBounded(t *testing.T) {
	// Property: more reduction -> more speedup, and never beyond the
	// component's share of the total.
	f := func(compRaw, totRaw uint16, rRaw uint8) bool {
		comp := float64(compRaw%1000) + 1
		tot := comp + float64(totRaw%2000) + 1
		r := float64(rRaw%100) / 100
		s := Sweep("x", comp, tot, nil)
		prev := -1.0
		for _, v := range s.SpeedupPct {
			if v < prev {
				return false
			}
			prev = v
		}
		return Speedup(comp, tot, r) <= comp/tot*100+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOptimizations(t *testing.T) {
	opts := Optimizations(model.Paper())
	if len(opts) != 5 {
		t.Fatalf("optimizations = %d", len(opts))
	}
	for _, o := range opts {
		if o.Name == "" || o.Likelihood == "" || o.Discussion == "" || o.Series.Name == "" {
			t.Errorf("incomplete optimization %+v", o)
		}
	}
	// The integrated-NIC scenario must cover the whole I/O subsystem.
	c := model.Paper()
	if math.Abs(opts[0].Series.ComponentNs-(2*c.PCIe+c.RCToMem8)) > 0.005 {
		t.Errorf("integrated NIC T_X = %v", opts[0].Series.ComponentNs)
	}
}

func TestCombinedAdds(t *testing.T) {
	c := model.Paper()
	total := c.E2ELatency()
	single := Speedup(c.Switch, total, 0.70)
	combined := Combined(total, map[string]struct {
		ComponentNs float64
		Reduction   float64
	}{
		"switch": {c.Switch, 0.70},
		"wire":   {c.Wire, 0.50},
	})
	if math.Abs(combined-(single+Speedup(c.Wire, total, 0.50))) > 1e-9 {
		t.Error("combined speedups do not add")
	}
}

func TestFutureSystem(t *testing.T) {
	s, lat := FutureSystem(model.Paper())
	if s <= 30 || s >= 60 {
		t.Errorf("future-system speedup = %.2f%%, expected a 30-60%% gain", s)
	}
	want := model.Paper().E2ELatency() * (1 - s/100)
	if math.Abs(lat-want) > 1e-9 {
		t.Error("future latency inconsistent with speedup")
	}
	// Sub-microsecond MPI latency: the §7 optimizations together get
	// there.
	if lat >= 1000 {
		t.Errorf("future latency = %.2f ns, expected sub-microsecond", lat)
	}
}

func TestSeriesAtAndString(t *testing.T) {
	s := Sweep("x", 100, 1000, nil)
	if math.Abs(s.At(0.5)-5) > 1e-12 {
		t.Errorf("At(0.5) = %v", s.At(0.5))
	}
	if s.String() == "" {
		t.Error("series string empty")
	}
}
