// Package whatif implements the paper's §7 simulated-optimizations analysis
// (Figure 17): if component X is made Y% faster, how much does the overall
// injection overhead or end-to-end latency improve?
//
// Cross-checking the paper's quoted numbers against its Table-1 arithmetic
// fixes the speedup metric as the percentage reduction of the overall time:
// speedup(X, r) = r * T_X / T_total (a 20% HLP reduction gives 0.20 *
// 85.42 / 264.97 = 6.44%, the paper's exact value; the switch-to-30ns case
// read at the 70% grid point gives 0.70 * 108 / 1387.02 = 5.45%, also the
// paper's value). Because the model's components do not execute
// concurrently, the curves are linear in r — and §7 notes a distributed-
// system simulator yields exactly the same speedups, which our
// SimulatedCheck verifies against the actual event-driven simulation.
package whatif

import (
	"fmt"

	"breakband/internal/core/model"
)

// DefaultReductions is the paper's x axis: 10% to 90% in five steps.
var DefaultReductions = []float64{0.10, 0.30, 0.50, 0.70, 0.90}

// Series is one curve of Figure 17.
type Series struct {
	Name string
	// ComponentNs is T_X, the optimizable time; TotalNs is the model
	// total it is part of.
	ComponentNs float64
	TotalNs     float64
	Reductions  []float64
	// SpeedupPct[i] is the percentage reduction of the total when the
	// component is reduced by Reductions[i].
	SpeedupPct []float64
}

// Speedup computes one point: the percentage reduction of total time when
// componentNs is reduced by the fraction r.
func Speedup(componentNs, totalNs, r float64) float64 {
	return r * componentNs / totalNs * 100
}

// Ratio converts a percentage-reduction speedup into the equivalent
// T_old/T_new ratio.
func Ratio(speedupPct float64) float64 {
	return 1 / (1 - speedupPct/100)
}

// Sweep builds a series over the given reductions (DefaultReductions if
// nil).
func Sweep(name string, componentNs, totalNs float64, reductions []float64) Series {
	if reductions == nil {
		reductions = DefaultReductions
	}
	s := Series{Name: name, ComponentNs: componentNs, TotalNs: totalNs, Reductions: reductions}
	for _, r := range reductions {
		s.SpeedupPct = append(s.SpeedupPct, Speedup(componentNs, totalNs, r))
	}
	return s
}

// At evaluates the series' speedup at an arbitrary reduction.
func (s Series) At(r float64) float64 { return Speedup(s.ComponentNs, s.TotalNs, r) }

// String implements fmt.Stringer.
func (s Series) String() string {
	return fmt.Sprintf("%s: T_X=%.2f ns of %.2f ns, max speedup %.2f%%",
		s.Name, s.ComponentNs, s.TotalNs, s.At(1))
}

// Fig17aCPUInjection: CPU-component reductions vs overall injection speedup.
func Fig17aCPUInjection(c model.Components) []Series {
	total := c.OverallInjection()
	return []Series{
		Sweep("HLP", c.HLPPost()+c.HLPTxProg, total, nil),
		Sweep("LLP", c.LLPPost+c.LLPTxProg, total, nil),
		Sweep("LLP_post", c.LLPPost, total, nil),
		Sweep("PIO", c.PIOCopy, total, nil),
		Sweep("HLP_tx_prog", c.HLPTxProg, total, nil),
		Sweep("HLP_post", c.HLPPost(), total, nil),
		Sweep("LLP_tx_prog", c.LLPTxProg, total, nil),
	}
}

// Fig17bCPULatency: CPU-component reductions vs end-to-end latency speedup.
func Fig17bCPULatency(c model.Components) []Series {
	total := c.E2ELatency()
	return []Series{
		Sweep("HLP", c.HLPPost()+c.HLPRxProg(), total, nil),
		Sweep("LLP", c.LLPPost+c.LLPProg, total, nil),
		Sweep("HLP_rx_prog", c.HLPRxProg(), total, nil),
		Sweep("LLP_post", c.LLPPost, total, nil),
		Sweep("PIO", c.PIOCopy, total, nil),
		Sweep("HLP_post", c.HLPPost(), total, nil),
		Sweep("LLP_prog", c.LLPProg, total, nil),
	}
}

// Fig17cIOLatency: I/O-component reductions vs end-to-end latency speedup.
// "Integrated NIC" collapses the whole I/O subsystem (both PCIe crossings
// plus the RC's memory write), the §7.1 SoC-integration scenario.
func Fig17cIOLatency(c model.Components) []Series {
	total := c.E2ELatency()
	return []Series{
		Sweep("Integrated NIC", 2*c.PCIe+c.RCToMem8, total, nil),
		Sweep("PCIe", 2*c.PCIe, total, nil),
		Sweep("RC-to-MEM", c.RCToMem8, total, nil),
	}
}

// Fig17dNetworkLatency: network-component reductions vs end-to-end latency
// speedup.
func Fig17dNetworkLatency(c model.Components) []Series {
	total := c.E2ELatency()
	return []Series{
		Sweep("Wire", c.Wire, total, nil),
		Sweep("Switch", c.Switch, total, nil),
	}
}

// Combined evaluates several simultaneous reductions (an extension beyond
// Figure 17's one-at-a-time curves: because the model components are
// non-overlapping, combined speedups add). Each entry pairs a component time
// T_X with its reduction fraction.
func Combined(total float64, parts map[string]struct {
	ComponentNs float64
	Reduction   float64
}) float64 {
	sum := 0.0
	for _, p := range parts {
		sum += Speedup(p.ComponentNs, total, p.Reduction)
	}
	return sum
}

// FutureSystem is the combined projection the §7 discussion gestures at: an
// SoC-integrated NIC (90% I/O reduction), fast device-memory writes (84% of
// the PIO copy) and a 20% leaner software stack, applied to the end-to-end
// latency model.
func FutureSystem(c model.Components) (speedupPct float64, newLatencyNs float64) {
	total := c.E2ELatency()
	s := Combined(total, map[string]struct {
		ComponentNs float64
		Reduction   float64
	}{
		"io":  {2*c.PCIe + c.RCToMem8, 0.90},
		"pio": {c.PIOCopy, 0.84},
		"sw":  {c.HLPPost() + c.HLPRxProg() + (c.LLPPost - c.PIOCopy) + c.LLPProg, 0.20},
	})
	return s, total * (1 - s/100)
}

// Optimization pairs a Figure-17 curve with the paper's qualitative
// discussion of its likelihood (§7), for the experiment report.
type Optimization struct {
	Name       string
	Target     string // CPU, I/O or Network
	Likelihood string
	Discussion string
	Series     Series
}

// Optimizations lists the §7 scenario set with the paper's likelihood
// assessments.
func Optimizations(c model.Components) []Optimization {
	io := Fig17cIOLatency(c)
	cpuInj := Fig17aCPUInjection(c)
	cpuLat := Fig17bCPULatency(c)
	net := Fig17dNetworkLatency(c)
	return []Optimization{
		{
			Name:       "NIC integrated into an SoC",
			Target:     "I/O",
			Likelihood: "more than likely (Tofu-D already ships it)",
			Discussion: "Connecting the NIC to the network-on-chip removes most of the I/O subsystem; even a modest 50% I/O reduction improves latency by more than 15%.",
			Series:     io[0],
		},
		{
			Name:       "Faster device-memory writes (PIO)",
			Target:     "CPU",
			Likelihood: "likely (Normal-vs-Device write gap exceeds 90%)",
			Discussion: "Reducing the 64-byte PIO copy to ~15 ns (84%) improves injection by more than 25% and latency by more than 5%.",
			Series:     cpuInj[3],
		},
		{
			Name:       "Software engineering in the HLP",
			Target:     "CPU",
			Likelihood: "unlikely beyond ~20% (MPICH is already heavily optimized)",
			Discussion: "A 20% HLP reduction speeds injection up by at most 6.44%; the same reduction in the LLP reaches 13.33%.",
			Series:     cpuLat[0],
		},
		{
			Name:       "Faster interconnect wire",
			Target:     "Network",
			Likelihood: "less than likely (PAM/FEC trends may increase latency)",
			Discussion: "SerDes and forward-error-correction complexity for >100 Gb/s signalling can add hundreds of nanoseconds rather than remove them.",
			Series:     net[0],
		},
		{
			Name:       "Lower-latency switch",
			Target:     "Network",
			Likelihood: "unproven (GenZ forecasts 30-50 ns, undemonstrated)",
			Discussion: "Only an optimistic reduction to 30 ns (~72%) yields a substantial speedup (5.45% at the 70% grid point).",
			Series:     net[1],
		},
	}
}
