package breakdown

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"breakband/internal/core/model"
)

// pctClose allows 0.05 percentage points — the paper's figures print two
// decimals from the same arithmetic.
func pctClose(got, want float64) bool { return math.Abs(got-want) < 0.05 }

func checkParts(t *testing.T, b Breakdown, want map[string]float64) {
	t.Helper()
	for label, pct := range want {
		if got := b.Part(label).Pct; !pctClose(got, pct) {
			t.Errorf("%s: %s = %.2f%%, paper says %.2f%%", b.Title, label, got, pct)
		}
	}
	sum := 0.0
	for _, p := range b.Parts {
		sum += p.Pct
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("%s: percentages sum to %v", b.Title, sum)
	}
}

func TestFig4(t *testing.T) {
	// The paper's printed Figure 4 says PIO copy 53.79% / Other 8.49%,
	// but its own Table 1 gives 94.25/175.42 = 53.73% and 14.99/175.42 =
	// 8.55%. We follow Table 1 (documented in EXPERIMENTS.md).
	checkParts(t, Fig4LLPPost(model.Paper()), map[string]float64{
		"MD setup":        15.84,
		"Barrier for MD":  9.88,
		"Barrier for DBC": 12.01,
		"PIO copy":        53.73,
		"Other":           8.55,
	})
}

func TestFig8(t *testing.T) {
	// The paper's printed Figure 8 (61.18/21.49/17.33) back-solves to a
	// 286.74 ns total — i.e. Misc as the measurement update only,
	// omitting the busy post its own Equation 1 includes (total 295.73).
	// We follow Equation 1 (documented in EXPERIMENTS.md).
	checkParts(t, Fig8Injection(model.Paper()), map[string]float64{
		"LLP_post": 59.32,
		"LLP_prog": 20.84,
		"Misc":     19.84,
	})
}

func TestFig8PaperPrintDiscrepancy(t *testing.T) {
	// Pin the reverse-engineering of the printed figure so the
	// documentation claim stays verified: the printed percentages match
	// a Misc of MeasUpdate alone.
	c := model.Paper()
	printedTotal := c.LLPPost + c.LLPProg + c.MeasUpdate
	for _, chk := range []struct {
		ns, printedPct float64
	}{
		{c.LLPPost, 61.18}, {c.LLPProg, 21.49}, {c.MeasUpdate, 17.33},
	} {
		if got := chk.ns / printedTotal * 100; math.Abs(got-chk.printedPct) > 0.05 {
			t.Errorf("printed-figure hypothesis broken: %v%% vs %v%%", got, chk.printedPct)
		}
	}
}

func TestFig10(t *testing.T) {
	checkParts(t, Fig10Latency(model.Paper()), map[string]float64{
		"LLP_post":      16.33,
		"TX PCIe":       12.80,
		"Wire":          25.58,
		"Switch":        10.05,
		"RX PCIe":       12.80,
		"RC-to-MEM(8B)": 22.43,
	})
}

func TestFig10WithProg(t *testing.T) {
	b := Fig10WithProg(model.Paper())
	if math.Abs(b.TotalNs-1135.8) > 0.005 {
		t.Errorf("full LLP latency total = %v", b.TotalNs)
	}
}

func TestFig11(t *testing.T) {
	bars := Fig11HLP(model.Paper())
	checkParts(t, bars[0], map[string]float64{"UCP": 8.24, "MPICH": 91.76})
	checkParts(t, bars[1], map[string]float64{"UCP": 33.91, "MPICH": 66.09})
}

func TestFig12(t *testing.T) {
	checkParts(t, Fig12OverallInjection(model.Paper()), map[string]float64{
		"Misc":      1.20,
		"Post_prog": 22.58,
		"Post":      76.23,
	})
}

func TestFig13(t *testing.T) {
	b := Fig13E2ELatency(model.Paper())
	checkParts(t, b, map[string]float64{
		"HLP_post":      1.91,
		"LLP_post":      12.65,
		"TX PCIe":       9.91,
		"Wire":          19.81,
		"Switch":        7.79,
		"RX PCIe":       9.91,
		"RC-to-MEM(8B)": 17.37,
		"LLP_prog":      4.44,
		"HLP_rx_prog":   16.20,
	})
	if math.Abs(b.TotalNs-1387.02) > 0.005 {
		t.Errorf("E2E total = %v", b.TotalNs)
	}
}

func TestFig14(t *testing.T) {
	bars := Fig14HLPvsLLP(model.Paper())
	checkParts(t, bars[0], map[string]float64{"LLP": 86.85, "HLP": 13.15})
	checkParts(t, bars[1], map[string]float64{"LLP": 1.61, "HLP": 98.39})
	checkParts(t, bars[2], map[string]float64{"LLP": 21.53, "HLP": 78.47})
}

func TestFig15(t *testing.T) {
	bars := Fig15HighLevel(model.Paper())
	checkParts(t, bars[0], map[string]float64{"Network": 27.60, "I/O": 37.20, "CPU": 35.20})
	checkParts(t, bars[1], map[string]float64{"LLP": 48.55, "HLP": 51.45})
	checkParts(t, bars[2], map[string]float64{"RC-to-MEM": 46.70, "PCIe": 53.30})
	checkParts(t, bars[3], map[string]float64{"Wire": 71.79, "Switch": 28.21})
}

func TestFig15Insight2(t *testing.T) {
	// Insight 2: CPU and I/O together contribute 72.4% of the latency.
	bars := Fig15HighLevel(model.Paper())
	onNode := bars[0].Part("I/O").Pct + bars[0].Part("CPU").Pct
	if math.Abs(onNode-72.4) > 0.05 {
		t.Errorf("on-node share = %.2f%%, want 72.40%%", onNode)
	}
}

func TestFig16(t *testing.T) {
	bars := Fig16OnNode(model.Paper())
	checkParts(t, bars[0], map[string]float64{"Target": 66.20, "Initiator": 33.80})
	checkParts(t, bars[1], map[string]float64{"I/O": 40.50, "CPU": 59.50})
	checkParts(t, bars[2], map[string]float64{"I/O": 56.93, "CPU": 43.07})
	checkParts(t, bars[3], map[string]float64{"RC-to-MEM": 63.67, "PCIe": 36.33})
}

func TestPartLookupPanics(t *testing.T) {
	b := New("x", Part{Label: "a", Ns: 1})
	defer func() {
		if recover() == nil {
			t.Error("unknown part lookup did not panic")
		}
	}()
	b.Part("missing")
}

func TestString(t *testing.T) {
	b := New("title", Part{Label: "a", Ns: 30}, Part{Label: "b", Ns: 70})
	s := b.String()
	if !strings.Contains(s, "title") || !strings.Contains(s, "a=30.00%") {
		t.Errorf("string = %q", s)
	}
}

func TestQuickPercentagesSumTo100(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		parts := make([]Part, 0, len(vals))
		total := 0.0
		for i, v := range vals {
			ns := float64(v) + 1
			total += ns
			parts = append(parts, Part{Label: string(rune('a' + i%26)), Ns: ns})
		}
		b := New("q", parts...)
		sum := 0.0
		for _, p := range b.Parts {
			sum += p.Pct
		}
		return math.Abs(sum-100) < 1e-6 && math.Abs(b.TotalNs-total) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroTotal(t *testing.T) {
	b := New("empty", Part{Label: "a", Ns: 0})
	if b.Parts[0].Pct != 0 {
		t.Error("zero-total breakdown produced NaN percentages")
	}
}
