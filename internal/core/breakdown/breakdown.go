// Package breakdown derives every breakdown figure of the paper (Figures 4,
// 8, 10, 11, 12, 13, 14, 15 and 16) from a measured Components table.
package breakdown

import (
	"fmt"
	"strings"

	"breakband/internal/core/model"
)

// Part is one labelled share of a breakdown.
type Part struct {
	Label string
	Ns    float64
	Pct   float64
}

// Breakdown is one stacked bar: labelled parts summing to a total.
type Breakdown struct {
	Title   string
	Parts   []Part
	TotalNs float64
}

// New builds a breakdown, computing the total and percentages.
func New(title string, parts ...Part) Breakdown {
	b := Breakdown{Title: title}
	for _, p := range parts {
		b.TotalNs += p.Ns
	}
	for _, p := range parts {
		if b.TotalNs > 0 {
			p.Pct = p.Ns / b.TotalNs * 100
		}
		b.Parts = append(b.Parts, p)
	}
	return b
}

// Part returns the named part, panicking if absent (a typo in a figure
// definition is a programming error).
func (b Breakdown) Part(label string) Part {
	for _, p := range b.Parts {
		if p.Label == label {
			return p
		}
	}
	panic(fmt.Sprintf("breakdown: no part %q in %q", label, b.Title))
}

// String renders the breakdown on one line, e.g. for logs.
func (b Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%.2f ns):", b.Title, b.TotalNs)
	for _, p := range b.Parts {
		fmt.Fprintf(&sb, " %s=%.2f%%", p.Label, p.Pct)
	}
	return sb.String()
}

// Fig4LLPPost is the breakdown of time in an LLP_post (paper Figure 4):
// MD setup, barrier for MD, barrier for DBC, PIO copy, and Other.
func Fig4LLPPost(c model.Components) Breakdown {
	return New("LLP_post",
		Part{Label: "MD setup", Ns: c.MDSetup},
		Part{Label: "Barrier for MD", Ns: c.BarrierMD},
		Part{Label: "Barrier for DBC", Ns: c.BarrierDBC},
		Part{Label: "PIO copy", Ns: c.PIOCopy},
		Part{Label: "Other", Ns: c.LLPPostMisc()},
	)
}

// Fig8Injection is the breakdown of the LLP injection overhead (Figure 8):
// LLP_post, LLP_prog, Misc.
func Fig8Injection(c model.Components) Breakdown {
	return New("Injection overhead (LLP)",
		Part{Label: "LLP_post", Ns: c.LLPPost},
		Part{Label: "LLP_prog", Ns: c.LLPProg},
		Part{Label: "Misc", Ns: c.LLPMisc()},
	)
}

// Fig10Latency is the breakdown of the LLP-level latency (Figure 10).
func Fig10Latency(c model.Components) Breakdown {
	return New("Latency (LLP)",
		Part{Label: "LLP_post", Ns: c.LLPPost},
		Part{Label: "TX PCIe", Ns: c.PCIe},
		Part{Label: "Wire", Ns: c.Wire},
		Part{Label: "Switch", Ns: c.Switch},
		Part{Label: "RX PCIe", Ns: c.PCIe},
		Part{Label: "RC-to-MEM(8B)", Ns: c.RCToMem8},
	)
}

// Fig10WithProg extends Figure 10 with the receive-side LLP_prog term the
// §4.3 model includes (the paper's figure omits it from the bar).
func Fig10WithProg(c model.Components) Breakdown {
	b := Fig10Latency(c)
	return New("Latency (LLP, incl. LLP_prog)",
		append(append([]Part{}, b.Parts...), Part{Label: "LLP_prog", Ns: c.LLPProg})...)
}

// Fig11HLP is the HLP-internal breakdown (Figure 11): where MPI_Isend and a
// successful receive-side MPI_Wait spend their time between UCP and MPICH.
func Fig11HLP(c model.Components) []Breakdown {
	return []Breakdown{
		New("MPI_Isend (HLP)",
			Part{Label: "UCP", Ns: c.HLPPostUCP},
			Part{Label: "MPICH", Ns: c.HLPPostMPICH},
		),
		New("RX MPI_Wait (HLP)",
			Part{Label: "UCP", Ns: c.WaitUCP},
			Part{Label: "MPICH", Ns: c.WaitMPICH},
		),
	}
}

// Fig12OverallInjection is the overall injection breakdown (Figure 12):
// Misc, Post_prog, Post.
func Fig12OverallInjection(c model.Components) Breakdown {
	return New("Overall injection overhead",
		Part{Label: "Misc", Ns: c.MiscPerOp},
		Part{Label: "Post_prog", Ns: c.PostProg()},
		Part{Label: "Post", Ns: c.Post()},
	)
}

// Fig13E2ELatency is the end-to-end latency breakdown (Figure 13), nine
// components in path order.
func Fig13E2ELatency(c model.Components) Breakdown {
	return New("End-to-end latency",
		Part{Label: "HLP_post", Ns: c.HLPPost()},
		Part{Label: "LLP_post", Ns: c.LLPPost},
		Part{Label: "TX PCIe", Ns: c.PCIe},
		Part{Label: "Wire", Ns: c.Wire},
		Part{Label: "Switch", Ns: c.Switch},
		Part{Label: "RX PCIe", Ns: c.PCIe},
		Part{Label: "RC-to-MEM(8B)", Ns: c.RCToMem8},
		Part{Label: "LLP_prog", Ns: c.LLPProg},
		Part{Label: "HLP_rx_prog", Ns: c.HLPRxProg()},
	)
}

// Fig14HLPvsLLP splits initiation, send progress and receive progress
// between the two protocol levels (Figure 14).
func Fig14HLPvsLLP(c model.Components) []Breakdown {
	return []Breakdown{
		New("Initiation",
			Part{Label: "LLP", Ns: c.LLPPost},
			Part{Label: "HLP", Ns: c.HLPPost()},
		),
		New("TX Progress",
			Part{Label: "LLP", Ns: c.LLPTxProg},
			Part{Label: "HLP", Ns: c.HLPTxProg},
		),
		New("RX Progress",
			Part{Label: "LLP", Ns: c.LLPProg},
			Part{Label: "HLP", Ns: c.HLPRxProg()},
		),
	}
}

// Fig15HighLevel is the CPU / I/O / Network split of the end-to-end latency
// with each category's internal composition (Figure 15). The first
// breakdown is the top-level split; the rest decompose each category.
func Fig15HighLevel(c model.Components) []Breakdown {
	cpu := c.HLPPost() + c.LLPPost + c.LLPProg + c.HLPRxProg()
	io := 2*c.PCIe + c.RCToMem8
	return []Breakdown{
		New("End-to-end latency",
			Part{Label: "Network", Ns: c.Network()},
			Part{Label: "I/O", Ns: io},
			Part{Label: "CPU", Ns: cpu},
		),
		New("CPU",
			Part{Label: "LLP", Ns: c.LLPPost + c.LLPProg},
			Part{Label: "HLP", Ns: c.HLPPost() + c.HLPRxProg()},
		),
		New("I/O",
			Part{Label: "RC-to-MEM", Ns: c.RCToMem8},
			Part{Label: "PCIe", Ns: 2 * c.PCIe},
		),
		New("Network",
			Part{Label: "Wire", Ns: c.Wire},
			Part{Label: "Switch", Ns: c.Switch},
		),
	}
}

// Fig16OnNode is the on-node time split between initiator and target with
// each node's CPU/I-O composition (Figure 16).
func Fig16OnNode(c model.Components) []Breakdown {
	initiator := c.HLPPost() + c.LLPPost + c.PCIe
	target := c.PCIe + c.RCToMem8 + c.LLPProg + c.HLPRxProg()
	return []Breakdown{
		New("On-node",
			Part{Label: "Target", Ns: target},
			Part{Label: "Initiator", Ns: initiator},
		),
		New("Initiator",
			Part{Label: "I/O", Ns: c.PCIe},
			Part{Label: "CPU", Ns: c.HLPPost() + c.LLPPost},
		),
		New("Target",
			Part{Label: "I/O", Ns: c.PCIe + c.RCToMem8},
			Part{Label: "CPU", Ns: c.LLPProg + c.HLPRxProg()},
		),
		New("Target I/O",
			Part{Label: "RC-to-MEM", Ns: c.RCToMem8},
			Part{Label: "PCIe", Ns: c.PCIe},
		),
	}
}
