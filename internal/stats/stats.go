// Package stats provides the summary statistics used by the measurement
// methodology and the figure renderers: streaming moments (Welford),
// quantiles, and fixed-width histograms in the style of the paper's Figure 7.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates float64 observations and computes summary statistics.
// The zero value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
	// Welford accumulators for numerically stable mean/variance.
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N reports the number of observations.
func (s *Sample) N() int { return s.n }

// Mean reports the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 { return s.mean }

// Var reports the unbiased sample variance.
func (s *Sample) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std reports the sample standard deviation.
func (s *Sample) Std() float64 { return math.Sqrt(s.Var()) }

// Min reports the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 { return s.min }

// Max reports the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 { return s.max }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile reports the q-quantile (0 <= q <= 1) using linear interpolation
// between order statistics. It panics on an empty sample or out-of-range q.
func (s *Sample) Quantile(q float64) float64 {
	if s.n == 0 {
		panic("stats: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of range", q))
	}
	s.ensureSorted()
	if s.n == 1 {
		return s.xs[0]
	}
	pos := q * float64(s.n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median reports the 0.5 quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Values returns a copy of the observations in insertion order is NOT
// guaranteed (they may have been sorted); callers needing order must keep
// their own slice.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Summary is a value snapshot of a Sample, convenient for reports.
type Summary struct {
	N                      int
	Mean, Median           float64
	Std                    float64
	Min, Max               float64
	P5, P25, P75, P95, P99 float64
}

// Summarize computes a Summary. An empty sample yields a zero Summary.
func (s *Sample) Summarize() Summary {
	if s.n == 0 {
		return Summary{}
	}
	return Summary{
		N:      s.n,
		Mean:   s.Mean(),
		Median: s.Median(),
		Std:    s.Std(),
		Min:    s.Min(),
		Max:    s.Max(),
		P5:     s.Quantile(0.05),
		P25:    s.Quantile(0.25),
		P75:    s.Quantile(0.75),
		P95:    s.Quantile(0.95),
		P99:    s.Quantile(0.99),
	}
}

// String renders a Summary in one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f median=%.2f std=%.4f min=%.2f max=%.2f",
		s.N, s.Mean, s.Median, s.Std, s.Min, s.Max)
}

// Histogram bins observations into fixed-width buckets over [Lo, Hi); values
// outside the range are counted in Under/Over. This mirrors the probability-
// density plot of the paper's Figure 7 (whose max is off-scale and noted in a
// caption, exactly like our Over count).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
	Total  int
}

// NewHistogram builds an empty histogram with nbins buckets across [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if hi <= lo || nbins <= 0 {
		panic("stats: invalid histogram range")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
}

// Add bins one observation.
func (h *Histogram) Add(x float64) {
	h.Total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard FP edge
			i--
		}
		h.Counts[i]++
	}
}

// BinWidth reports the bucket width.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// Density reports bucket i's probability density (share of total divided by
// bin width), matching Figure 7's y axis.
func (h *Histogram) Density(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total) / h.BinWidth()
}

// FromSample bins all observations of s.
func (h *Histogram) FromSample(s *Sample) {
	for _, x := range s.Values() {
		h.Add(x)
	}
}
