package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleOf(xs ...float64) *Sample {
	s := &Sample{}
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

func TestMoments(t *testing.T) {
	s := sampleOf(2, 4, 4, 4, 5, 5, 7, 9)
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	// Unbiased sample variance of this classic dataset is 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Errorf("Var = %v, want %v", s.Var(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("range [%v, %v]", s.Min(), s.Max())
	}
}

func TestEmptyAndSingle(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Std() != 0 || s.N() != 0 {
		t.Error("empty sample should be all zeros")
	}
	if sum := s.Summarize(); sum.N != 0 {
		t.Error("empty summary not zero")
	}
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Var() != 0 || s.Median() != 3.5 {
		t.Error("single-element stats wrong")
	}
}

func TestQuantiles(t *testing.T) {
	s := sampleOf(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	if s.Median() != 5.5 {
		t.Errorf("median = %v", s.Median())
	}
	if s.Quantile(0) != 1 || s.Quantile(1) != 10 {
		t.Error("extreme quantiles wrong")
	}
	if q := s.Quantile(0.25); math.Abs(q-3.25) > 1e-12 {
		t.Errorf("q25 = %v", q)
	}
}

func TestQuantilePanics(t *testing.T) {
	s := sampleOf(1)
	for _, q := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("quantile %v did not panic", q)
				}
			}()
			s.Quantile(q)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty quantile did not panic")
			}
		}()
		(&Sample{}).Quantile(0.5)
	}()
}

func TestAddAfterQuantile(t *testing.T) {
	// Adding after a sorted read must keep statistics correct.
	s := sampleOf(3, 1, 2)
	_ = s.Median()
	s.Add(100)
	if s.Max() != 100 || s.N() != 4 {
		t.Error("Add after Quantile lost data")
	}
	if s.Quantile(1) != 100 {
		t.Error("quantile after re-add wrong")
	}
}

func TestSummarize(t *testing.T) {
	s := sampleOf(10, 20, 30, 40, 50)
	sum := s.Summarize()
	if sum.N != 5 || sum.Mean != 30 || sum.Median != 30 || sum.Min != 10 || sum.Max != 50 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.String() == "" {
		t.Error("summary string empty")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for _, v := range []float64{-5, 0, 5, 15, 95, 99.999, 100, 1000} {
		h.Add(v)
	}
	if h.Under != 1 {
		t.Errorf("Under = %d", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d", h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 5
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[9] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total != 8 {
		t.Errorf("Total = %d", h.Total)
	}
	if h.BinWidth() != 10 {
		t.Errorf("BinWidth = %v", h.BinWidth())
	}
}

func TestHistogramDensityIntegratesToCoverage(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for i := 0; i < 100; i++ {
		h.Add(float64(i % 10))
	}
	integral := 0.0
	for i := range h.Counts {
		integral += h.Density(i) * h.BinWidth()
	}
	if math.Abs(integral-1) > 1e-12 {
		t.Errorf("density integral = %v, want 1", integral)
	}
}

func TestHistogramInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid histogram did not panic")
		}
	}()
	NewHistogram(10, 0, 5)
}

func TestHistogramFromSample(t *testing.T) {
	s := sampleOf(1, 2, 3)
	h := NewHistogram(0, 4, 4)
	h.FromSample(s)
	if h.Total != 3 {
		t.Errorf("FromSample total = %d", h.Total)
	}
}

func TestQuickMomentInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		s := &Sample{}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			// Bound magnitudes to avoid float blowups irrelevant here.
			if math.Abs(x) > 1e12 {
				return true
			}
			s.Add(x)
		}
		return s.Min() <= s.Mean()+1e-6 && s.Mean() <= s.Max()+1e-6 &&
			s.Var() >= -1e-9 && s.N() == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	f := func(xs []float64, aRaw, bRaw uint8) bool {
		if len(xs) == 0 {
			return true
		}
		s := &Sample{}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		a := float64(aRaw) / 255
		b := float64(bRaw) / 255
		if a > b {
			a, b = b, a
		}
		return s.Quantile(a) <= s.Quantile(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
