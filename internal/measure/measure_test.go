package measure

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"breakband/internal/config"
)

// sharedCampaign runs a reduced-size measurement campaign once per noise
// level and caches the result for the package's precision tests. It uses an
// explicit 4-way pool so even a single-core runner exercises the concurrent
// engine. Entries build concurrently (the tests are parallel), hence the
// per-key once.
type campaignEntry struct {
	once sync.Once
	res  *Result
}

var (
	campaignMu sync.Mutex
	campaigns  = map[config.NoiseLevel]*campaignEntry{}
)

func sharedCampaign(t *testing.T, noise config.NoiseLevel) *Result {
	t.Helper()
	campaignMu.Lock()
	e, ok := campaigns[noise]
	if !ok {
		e = &campaignEntry{}
		campaigns[noise] = e
	}
	campaignMu.Unlock()
	e.once.Do(func() {
		mk := func() *config.Config { return config.TX2CX4(noise, 1, true) }
		e.res = Run(mk, Opts{Samples: 150, Windows: 10, Parallelism: 4})
	})
	return e.res
}

func within(t *testing.T, name string, got, want, tolPct float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero reference", name)
	}
	if math.Abs(got-want)/math.Abs(want)*100 > tolPct {
		t.Errorf("%s = %.2f, want %.2f (±%.1f%%)", name, got, want, tolPct)
	}
}

func TestComponentsReproduceTable1(t *testing.T) {
	t.Parallel()
	c := sharedCampaign(t, config.NoiseOff).Components
	within(t, "MDSetup", c.MDSetup, config.TabMDSetup, 1)
	within(t, "BarrierMD", c.BarrierMD, config.TabBarrierMD, 1)
	within(t, "BarrierDBC", c.BarrierDBC, config.TabBarrierDBC, 1)
	within(t, "PIOCopy", c.PIOCopy, config.TabPIOCopy, 1)
	within(t, "LLPPost", c.LLPPost, config.TabLLPPost, 1)
	within(t, "LLPPostMisc", c.LLPPostMisc(), config.TabLLPPostMisc, 2)
	within(t, "LLPProg", c.LLPProg, config.TabLLPProg, 1)
	within(t, "BusyPost", c.BusyPost, config.TabBusyPost, 2)
	within(t, "MeasUpdate", c.MeasUpdate, config.TabMeasUpdate, 1)
	within(t, "PCIe", c.PCIe, config.TabPCIe, 0.5)
	within(t, "Wire", c.Wire, config.TabWire, 0.5)
	within(t, "Switch", c.Switch, config.TabSwitch, 1)
	within(t, "RCToMem8", c.RCToMem8, config.TabRCToMem8, 2)
	within(t, "HLPPostMPICH", c.HLPPostMPICH, config.TabMPIIsendMPICH, 3)
	within(t, "HLPPostUCP", c.HLPPostUCP, config.TabMPIIsendUCP, 5)
	within(t, "MPICHRecvCB", c.MPICHRecvCB, config.TabMPICHRecvCB, 2)
	within(t, "UCPRecvCB", c.UCPRecvCB, config.TabUCPRecvCB, 2)
	within(t, "MPICHAfterPr", c.MPICHAfterPr, config.TabMPICHAfterProg, 2)
	within(t, "WaitMPICH", c.WaitMPICH, config.TabMPIWaitMPICH, 5)
	within(t, "WaitUCP", c.WaitUCP, config.TabMPIWaitUCP, 5)
	within(t, "HLPTxProg", c.HLPTxProg, config.TabHLPTxProgPerOp, 6)
	within(t, "LLPTxProg", c.LLPTxProg, config.TabLLPProg/64, 2)
	within(t, "MiscPerOp", c.MiscPerOp, 3.17, 12)
}

func TestValidationsWithinFivePercent(t *testing.T) {
	t.Parallel()
	res := sharedCampaign(t, config.NoiseOff)
	for _, v := range res.Validations() {
		if !v.Within(5) {
			t.Errorf("%s: model error %.2f%% exceeds the paper's 5%% bound", v.Name, v.ErrPct)
		}
	}
}

func TestNoisyValidationsWithinFivePercent(t *testing.T) {
	if testing.Short() {
		t.Skip("noisy campaign in -short mode")
	}
	t.Parallel()
	res := sharedCampaign(t, config.NoiseOn)
	for _, v := range res.Validations() {
		if !v.Within(5) {
			t.Errorf("noisy %s: model error %.2f%%", v.Name, v.ErrPct)
		}
	}
	// The measured table must still be near the calibration targets.
	c := res.Components
	within(t, "noisy LLPPost", c.LLPPost, config.TabLLPPost, 4)
	within(t, "noisy PCIe", c.PCIe, config.TabPCIe, 1)
	within(t, "noisy RCToMem8", c.RCToMem8, config.TabRCToMem8, 4)
}

// TestParallelCampaignMatchesSerial is the engine's core guarantee: every
// task builds its own system with a task-derived noise seed, so the worker
// pool's width and interleaving must not change a single bit of the result.
func TestParallelCampaignMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name  string
		noise config.NoiseLevel
	}{
		{"NoiseOff", config.NoiseOff},
		{"NoiseOn", config.NoiseOn},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			mk := func() *config.Config { return config.TX2CX4(tc.noise, 7, true) }
			o := Opts{Samples: 100, Windows: 4}
			serialOpts, parallelOpts := o, o
			serialOpts.Parallelism = 1
			parallelOpts.Parallelism = 4
			serial := Run(mk, serialOpts)
			parallel := Run(mk, parallelOpts)
			if serial.Components != parallel.Components {
				t.Errorf("components diverge:\nserial   %+v\nparallel %+v",
					serial.Components, parallel.Components)
			}
			if serial.Observed != parallel.Observed {
				t.Errorf("observed values diverge:\nserial   %+v\nparallel %+v",
					serial.Observed, parallel.Observed)
			}
			if serial.CalibrationNs != parallel.CalibrationNs ||
				serial.BusyPerOp != parallel.BusyPerOp {
				t.Error("calibration or busy-post rate diverges between serial and parallel")
			}
			if !reflect.DeepEqual(serial.Extra, parallel.Extra) {
				t.Errorf("diagnostics diverge:\nserial   %v\nparallel %v",
					serial.Extra, parallel.Extra)
			}
		})
	}
}

// TestDefaultParallelismMatchesSerial pins the default (GOMAXPROCS) pool
// against forced-serial execution at minimal campaign size.
func TestDefaultParallelismMatchesSerial(t *testing.T) {
	t.Parallel()
	mk := func() *config.Config { return config.TX2CX4(config.NoiseOff, 1, true) }
	o := Opts{Samples: 100, Windows: 2}
	serial, def := o, o
	serial.Parallelism = 1
	a := Run(mk, serial)
	b := Run(mk, def)
	if a.Components != b.Components {
		t.Errorf("default parallelism diverges from serial:\nserial  %+v\ndefault %+v",
			a.Components, b.Components)
	}
}

func TestCalibrationMatchesPaper(t *testing.T) {
	t.Parallel()
	res := sharedCampaign(t, config.NoiseOff)
	within(t, "calibration overhead", res.CalibrationNs.Mean, config.TabMeasUpdate, 0.5)
	if res.CalibrationNs.N != 1000 {
		t.Errorf("calibration samples = %d, want 1000 (paper §3)", res.CalibrationNs.N)
	}
}

func TestObservedValues(t *testing.T) {
	t.Parallel()
	res := sharedCampaign(t, config.NoiseOff)
	o := res.Observed
	if o.LLPInjection.N < 400 {
		t.Errorf("injection deltas n = %d", o.LLPInjection.N)
	}
	within(t, "observed LLP injection", o.LLPInjection.Mean, config.TabLLPInjModel, 5)
	within(t, "observed LLP latency", o.LLPLatencyNs, config.TabLLPLatencyModel, 5)
	within(t, "observed overall injection", o.OverallInjectionNs, 264.97, 5)
	within(t, "observed E2E latency", o.E2ELatencyNs, config.TabE2ELatencyModel, 5)
}

func TestBusyPerOpTracked(t *testing.T) {
	t.Parallel()
	res := sharedCampaign(t, config.NoiseOff)
	// Window 192 vs depth 128: every third post goes busy.
	if math.Abs(res.BusyPerOp-1.0/3) > 0.02 {
		t.Errorf("busy posts per op = %.3f, want ~0.333", res.BusyPerOp)
	}
}

func TestMinimumSampleFloor(t *testing.T) {
	t.Parallel()
	mk := func() *config.Config { return config.TX2CX4(config.NoiseOff, 1, true) }
	// Requesting fewer than 100 samples is raised to the paper's floor.
	r := Run(mk, Opts{Samples: 10, Windows: 2})
	if r.Observed.LLPInjection.N < 100 {
		t.Errorf("sample floor not enforced: n = %d", r.Observed.LLPInjection.N)
	}
}

func TestExtraDiagnosticsPresent(t *testing.T) {
	t.Parallel()
	res := sharedCampaign(t, config.NoiseOff)
	for _, key := range []string{
		"network_one_way", "pong_ping_delta", "mpi_wait_total",
		"wait_loops_per_wait", "post_prog", "waitall_per_op",
	} {
		if _, ok := res.Extra[key]; !ok {
			t.Errorf("diagnostic %q missing", key)
		}
	}
	// The §5 no-busy-wait workload must complete every wait in one pass.
	if res.Extra["wait_loops_per_wait"] != 1 {
		t.Errorf("wait loops per wait = %v, want 1 (successful MPI_Wait)", res.Extra["wait_loops_per_wait"])
	}
}
