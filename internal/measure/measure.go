// Package measure re-executes the paper's measurement methodology inside
// the simulation and produces the measured Components table (the
// reproduction of Table 1) plus the observed benchmark values the models
// are validated against.
//
// Methodology rules from §3 are honoured:
//
//   - The profiling infrastructure is calibrated with empty scopes and its
//     mean overhead is subtracted from every measurement.
//   - Only one component is measured per run ("we do not simultaneously
//     measure time in any other component"); each sub-measurement below
//     builds a fresh system.
//   - Each reported value is a mean of at least 100 samples.
//   - Hardware components (PCIe, Wire, Switch, RC-to-MEM) are derived from
//     PCIe-analyzer trace deltas, never from software timers.
package measure

import (
	"fmt"

	"breakband/internal/analyzer"
	"breakband/internal/config"
	"breakband/internal/core/model"
	"breakband/internal/mpi"
	"breakband/internal/node"
	"breakband/internal/osu"
	"breakband/internal/pcie"
	"breakband/internal/perftest"
	"breakband/internal/sim"
	"breakband/internal/stats"
	"breakband/internal/uct"
	"breakband/internal/units"
)

// Observed collects the benchmark-level observations of §4 and §6.
type Observed struct {
	// LLPInjection summarizes the PCIe-analyzer deltas of consecutive
	// downstream PIO posts during put_bw (Figure 7's distribution; its
	// mean is §4.2's observed injection overhead).
	LLPInjection stats.Summary
	// LLPLatencyNs is am_lat's reported latency after deducting half a
	// measurement update (§4.3).
	LLPLatencyNs float64
	// OverallInjectionNs is the inverse of the OSU message rate (§6).
	OverallInjectionNs float64
	// E2ELatencyNs is the OSU point-to-point latency (§6).
	E2ELatencyNs float64
}

// Result is the full measurement campaign outcome.
type Result struct {
	Components    model.Components
	Observed      Observed
	CalibrationNs stats.Summary
	// BusyPerOp is the tracked §6 busy-post rate in the message-rate
	// window.
	BusyPerOp float64
	// Extra holds methodology diagnostics (keyed free-form, reported in
	// EXPERIMENTS.md).
	Extra map[string]float64
}

// Opts sizes the campaign.
type Opts struct {
	// Samples is the per-component sample target (>= 100 per the paper).
	Samples int
	// Windows is the message-rate window count.
	Windows int
}

// DefaultOpts returns the standard campaign sizing.
func DefaultOpts() Opts { return Opts{Samples: 400, Windows: 20} }

// Run executes the full methodology. mk must return a fresh, identically
// configured Config on every call (one per experiment run).
func Run(mk func() *config.Config, o Opts) *Result {
	if o.Samples < 100 {
		o.Samples = 100
	}
	if o.Windows <= 0 {
		o.Windows = 20
	}
	r := &Result{Extra: map[string]float64{}}
	r.Components.SignalPeriod = mk().Bench.SignalPeriod

	r.measureCalibration(mk)
	r.measureLLPStages(mk, o)
	r.measureDirectCosts(mk, o)
	r.measurePCIe(mk, o)
	r.measureNetwork(mk, o)
	r.measureRCToMem(mk, o)
	r.measureHLPPost(mk, o)
	r.measureWaitBreakdown(mk, o)
	r.measureTxProgress(mk, o)
	r.measureObserved(mk, o)
	return r
}

// newSys builds a fresh two-node system.
func newSys(mk func() *config.Config) *node.System {
	return node.NewSystem(mk(), 2)
}

// --- profiling-infrastructure calibration ---

func (r *Result) measureCalibration(mk func() *config.Config) {
	sys := newSys(mk)
	sys.K.Spawn("calibrate", func(p *sim.Proc) {
		r.CalibrationNs = sys.Nodes[0].Prof.Calibrate(p, sys.Cfg.Prof.CalibrationSamples)
	})
	sys.Run()
	sys.Shutdown()
}

// --- LLP component times (§4.1), one profiled stage per run ---

func (r *Result) measureLLPStages(mk func() *config.Config, o Opts) {
	stages := []uct.Stage{
		uct.StMDSetup, uct.StBarrierMD, uct.StBarrierDBC, uct.StPIOCopy,
		uct.StLLPPost, uct.StLLPProg, uct.StBusyPost,
	}
	means := map[uct.Stage]float64{}
	for _, st := range stages {
		sys := newSys(mk)
		res := perftest.PutBw(sys, perftest.Options{
			Iters: o.Samples + o.Samples/4, Warmup: 100,
			ProfStage: st, Calibrate: true,
		})
		means[st] = res.Worker.Node.Prof.MeanNs(st.Name())
		sys.Shutdown()
	}
	r.Components.MDSetup = means[uct.StMDSetup]
	r.Components.BarrierMD = means[uct.StBarrierMD]
	r.Components.BarrierDBC = means[uct.StBarrierDBC]
	r.Components.PIOCopy = means[uct.StPIOCopy]
	r.Components.LLPPost = means[uct.StLLPPost]
	r.Components.LLPProg = means[uct.StLLPProg]
	r.Components.BusyPost = means[uct.StBusyPost]
}

// measureDirectCosts profiles the benchmark-owned regions (the measurement
// update) the same way the paper wraps them with UCS profiling.
func (r *Result) measureDirectCosts(mk func() *config.Config, o Opts) {
	sys := newSys(mk)
	cfg := sys.Cfg
	n0 := sys.Nodes[0]
	sys.K.Spawn("direct_costs", func(p *sim.Proc) {
		prof := n0.Prof
		prof.Calibrate(p, cfg.Prof.CalibrationSamples)
		for i := 0; i < o.Samples; i++ {
			tok := prof.Begin(p, "meas_update")
			p.Sleep(cfg.SW.MeasUpdate.Sample(n0.Rand))
			prof.End(p, tok)
		}
		r.Components.MeasUpdate = prof.MeanNs("meas_update")
	})
	sys.Run()
	sys.Shutdown()
}

// --- PCIe (§4.3): half the TLP->ACK round trip at the analyzer ---

func (r *Result) measurePCIe(mk func() *config.Config, o Opts) {
	sys := newSys(mk)
	perftest.PutBw(sys, perftest.Options{Iters: o.Samples, Warmup: 100, ClearTrace: true})
	// The NIC's completion DMA-writes are upstream MWr transactions; each
	// is matched with its ACK DLLP from the RC.
	rt := sys.Nodes[0].Tap.AckRoundTrips(pcie.Up, pcie.MWr)
	if rt.N() < 100 {
		panic(fmt.Sprintf("measure: only %d PCIe round trips captured", rt.N()))
	}
	r.Components.PCIe = rt.Mean()
	sys.Shutdown()
}

// --- Wire and Switch (§4.3): am_lat trace deltas with and without the
// switch; the difference isolates the switch ---

func networkFromTrace(tap *analyzer.Analyzer) *stats.Sample {
	// Downstream 64B MWr (the PIO ping) to the next upstream 64B MWr
	// (the ping's completion, generated on the ACK from the target NIC):
	// the delta spans the network twice.
	deltas := tap.PairDeltas(
		func(rec analyzer.Record) bool {
			return rec.IsTLP && rec.Dir == pcie.Down && rec.TLPType == pcie.MWr && rec.Payload == 64
		},
		func(rec analyzer.Record) bool {
			return rec.IsTLP && rec.Dir == pcie.Up && rec.TLPType == pcie.MWr && rec.Payload == 64
		},
	)
	var half stats.Sample
	for _, d := range deltas.Values() {
		half.Add(d / 2)
	}
	return &half
}

func (r *Result) measureNetwork(mk func() *config.Config, o Opts) {
	// Direct NIC-to-NIC cabling first.
	mkDirect := func() *config.Config {
		cfg := mk()
		cfg.Fabric.UseSwitch = false
		return cfg
	}
	sysD := newSys(mkDirect)
	perftest.AmLat(sysD, perftest.Options{Iters: o.Samples, Warmup: 50, ClearTrace: true})
	wire := networkFromTrace(sysD.Nodes[0].Tap)
	sysD.Shutdown()

	// Then through the switch.
	sysS := newSys(mk)
	perftest.AmLat(sysS, perftest.Options{Iters: o.Samples, Warmup: 50, ClearTrace: true})
	network := networkFromTrace(sysS.Nodes[0].Tap)
	sysS.Shutdown()

	if wire.N() < 100 || network.N() < 100 {
		panic("measure: insufficient network trace samples")
	}
	r.Components.Wire = wire.Mean()
	r.Components.Switch = network.Mean() - wire.Mean()
	r.Extra["network_one_way"] = network.Mean()
}

// --- RC-to-MEM(8B) (§4.3, Figure 9): inbound-pong to outbound-ping delta,
// minus the already-measured components ---

func (r *Result) measureRCToMem(mk func() *config.Config, o Opts) {
	sys := newSys(mk)
	// One pong->ping pair per iteration boundary: run a margin past the
	// sample target so the trace yields at least o.Samples pairs.
	res := perftest.AmLat(sys, perftest.Options{Iters: o.Samples + 20, Warmup: 50, ClearTrace: true})
	rcq := res.Ep0.QP().RecvCQ.Region
	deltas := sys.Nodes[0].Tap.PairDeltas(
		// Inbound pong: the upstream DMA write into the initiator's
		// receive completion queue.
		func(rec analyzer.Record) bool {
			return rec.IsTLP && rec.Dir == pcie.Up && rec.TLPType == pcie.MWr &&
				rcq.Contains(rec.Addr, rec.Payload)
		},
		// Outgoing ping: the next downstream 64-byte PIO post.
		func(rec analyzer.Record) bool {
			return rec.IsTLP && rec.Dir == pcie.Down && rec.TLPType == pcie.MWr && rec.Payload == 64
		},
	)
	if deltas.N() < 100 {
		panic(fmt.Sprintf("measure: only %d pong->ping deltas captured", deltas.N()))
	}
	// delta = RC-to-MEM(8B) + 2*PCIe + LLP_prog + LLP_post (Figure 9).
	c := &r.Components
	c.RCToMem8 = deltas.Mean() - 2*c.PCIe - c.LLPProg - c.LLPPost
	// The 64-byte completion write commits in the same cache line;
	// documented assumption (the paper does not report RC-to-MEM(64B)).
	c.RCToMem64 = c.RCToMem8
	r.Extra["pong_ping_delta"] = deltas.Mean()
	sys.Shutdown()
}

// --- HLP initiation (§5): layer times by subtracting nested totals,
// one scope per run ---

func (r *Result) measureHLPPost(mk func() *config.Config, o Opts) {
	run := func(setup func(r0 *mpi.Rank), scope string) float64 {
		sys := newSys(mk)
		res := osu.Latency(sys, osu.Options{
			Iters: o.Samples, Warmup: 50, Calibrate: true,
			Setup: func(r0, r1 *mpi.Rank) { setup(r0) },
		})
		m := res.Rank0.Node.Prof.MeanNs(scope)
		sys.Shutdown()
		return m
	}
	isendTotal := run(func(r0 *mpi.Rank) { r0.ProfIsend = true }, "mpi_isend")
	ucpTotal := run(func(r0 *mpi.Rank) { r0.ProfUcpSend = true }, "ucp_tag_send_nb")
	uctTotal := run(func(r0 *mpi.Rank) { r0.Worker.Uct.ProfStage = uct.StLLPPost }, "llp_post")

	r.Components.HLPPostMPICH = isendTotal - ucpTotal
	r.Components.HLPPostUCP = ucpTotal - uctTotal
	r.Extra["mpi_isend_total"] = isendTotal
	r.Extra["ucp_tag_send_nb_total"] = ucpTotal
	r.Extra["llp_post_in_mpi"] = uctTotal
}

// --- MPI_Wait breakdown (§5): totals and callbacks across runs, combined
// with per-wait loop counts ---

// waitWorkload drives "successful (i.e. no busy waiting) MPI_Wait" calls
// (§5): rank 1 sends on a fixed schedule; rank 0 posts the receive before
// each message arrives and calls MPI_Wait only after it has landed, so every
// wait completes on its first progress pass.
func waitWorkload(mk func() *config.Config, samples int, setup func(r0 *mpi.Rank)) *mpi.Rank {
	sys := newSys(mk)
	cfg := sys.Cfg
	comm := mpi.NewComm(sys.Nodes[:2], cfg, uct.PIOInline)
	r0, r1 := comm.Ranks[0], comm.Ranks[1]
	setup(r0)
	// The waiter calibrates its profiler first (~100 us of simulated
	// time); traffic starts afterwards.
	const (
		start  = 500 * units.Microsecond
		period = 5 * units.Microsecond
	)
	sleepUntil := func(p *sim.Proc, t units.Time) {
		if t > p.Now() {
			p.Sleep(t - p.Now())
		}
	}
	data := make([]byte, 8)
	sys.K.Spawn("wait_workload.sender", func(p *sim.Proc) {
		r1.PreparePostedRecvs(p, 64)
		for i := 0; i < samples; i++ {
			sleepUntil(p, start+units.Time(i)*period)
			r1.Isend(p, 0, i, data)
			// Keep the transport retiring unsignaled batches.
			r1.Worker.Progress(p)
		}
	})
	sys.K.Spawn("wait_workload.waiter", func(p *sim.Proc) {
		r0.Node.Prof.Calibrate(p, cfg.Prof.CalibrationSamples)
		r0.PreparePostedRecvs(p, 512)
		for i := 0; i < samples; i++ {
			sleepUntil(p, start+units.Time(i)*period)
			req := r0.Irecv(p, 1, i)
			// The message lands ~1.4 us in; wait at +3 us so the
			// completion is already in the queue.
			sleepUntil(p, start+units.Time(i)*period+3*units.Microsecond)
			r0.Wait(p, req)
		}
	})
	sys.Run()
	sys.Shutdown()
	return r0
}

func (r *Result) measureWaitBreakdown(mk func() *config.Config, o Opts) {
	type runOut struct {
		mean  float64
		extra map[string]float64
	}
	run := func(setup func(r0 *mpi.Rank), collect func(r0 *mpi.Rank) runOut) runOut {
		r0 := waitWorkload(mk, o.Samples, setup)
		return collect(r0)
	}

	// (d) Total successful MPI_Wait for a receive.
	d := run(func(r0 *mpi.Rank) { r0.ProfWait = true }, func(r0 *mpi.Rank) runOut {
		return runOut{mean: r0.Node.Prof.MeanNs("mpi_wait_recv")}
	})
	// (e) ucp_worker_progress per call inside receive waits, with the
	// loops-per-wait count from the same run.
	e := run(func(r0 *mpi.Rank) { r0.ProfUcpProg = true }, func(r0 *mpi.Rank) runOut {
		loopsPerWait := float64(r0.Stats.RecvWaitLoops) / float64(r0.Stats.RecvWaits)
		return runOut{
			mean:  r0.Node.Prof.MeanNs("ucp_worker_progress"),
			extra: map[string]float64{"loops": loopsPerWait},
		}
	})
	// (f) uct_worker_progress inside receive waits: successful dequeues
	// and empty polls are separate scopes; totals reconstruct from
	// counts.
	f := run(func(r0 *mpi.Rank) { r0.ProfUctInWait = uct.StLLPProg }, func(r0 *mpi.Rank) runOut {
		prof := r0.Node.Prof
		waits := float64(r0.Stats.RecvWaits)
		success := prof.Sample(uct.StLLPProg.Name())
		uctTotal := success.Mean() * float64(success.N()) / waits
		if empty := prof.Sample("empty_poll"); empty != nil && empty.N() > 0 {
			uctTotal += empty.Mean() * float64(empty.N()) / waits
		}
		return runOut{mean: uctTotal}
	})
	// (g) MPICH receive callback; (h) UCP receive callback including the
	// nested MPICH callback; (i) MPICH work after a successful progress.
	g := run(func(r0 *mpi.Rank) { r0.ProfMpichCB = true }, func(r0 *mpi.Rank) runOut {
		return runOut{mean: r0.Node.Prof.MeanNs("mpich_recv_cb")}
	})
	h := run(func(r0 *mpi.Rank) { r0.Worker.ProfRecvCB = true }, func(r0 *mpi.Rank) runOut {
		return runOut{mean: r0.Node.Prof.MeanNs("ucp_recv_cb")}
	})
	i := run(func(r0 *mpi.Rank) { r0.ProfAfterProg = true }, func(r0 *mpi.Rank) runOut {
		return runOut{mean: r0.Node.Prof.MeanNs("mpich_after_progress")}
	})

	loopsPerWait := e.extra["loops"]
	sumUcp := e.mean * loopsPerWait
	ucpCBAlone := h.mean - g.mean

	c := &r.Components
	c.MPICHRecvCB = g.mean
	c.UCPRecvCB = ucpCBAlone
	c.MPICHAfterPr = i.mean
	// "Subtracting the total time of ucp_worker_progress from that of
	// MPI_Wait and adding in the time of the MPICH callback gives us the
	// time spent in MPICH" (§5); symmetrically for UCP above UCT.
	c.WaitMPICH = d.mean - sumUcp + g.mean
	c.WaitUCP = sumUcp - f.mean + ucpCBAlone

	r.Extra["mpi_wait_total"] = d.mean
	r.Extra["ucp_progress_per_call"] = e.mean
	r.Extra["wait_loops_per_wait"] = loopsPerWait
	r.Extra["uct_progress_total_per_wait"] = f.mean
	r.Extra["ucp_recv_cb_total"] = h.mean
}

// --- Send-side progress (§6): MPI_Waitall totals with the busy-post
// LLP_post deduction ---

func (r *Result) measureTxProgress(mk func() *config.Config, o Opts) {
	sys := newSys(mk)
	res := osu.MessageRate(sys, osu.Options{Windows: o.Windows})
	ops := float64(res.Messages)
	nbusy := float64(res.BusyPosts)

	// Deduct the deferred LLP_posts that UCP executed inside MPI_Waitall
	// for busy posts (§6 caveat one).
	postProg := (res.WaitallTotalNs - nbusy*r.Components.LLPPost) / ops
	// The LLP's share is one LLP_prog amortized over the unsignaled
	// completion period c (§6).
	llpShare := r.Components.LLPProg / float64(r.Components.SignalPeriod)

	c := &r.Components
	c.LLPTxProg = llpShare
	c.HLPTxProg = postProg - llpShare
	c.MiscPerOp = nbusy * c.BusyPost / ops
	r.BusyPerOp = nbusy / ops
	r.Extra["waitall_per_op"] = res.WaitallTotalNs / ops
	r.Extra["post_prog"] = postProg
	sys.Shutdown()
}

// --- Observed values (§4.2, §4.3, §6) ---

func (r *Result) measureObserved(mk func() *config.Config, o Opts) {
	// put_bw: injection overhead observed by the NIC = deltas of
	// consecutive downstream PIO posts on the analyzer (Figures 6 and 7).
	sysB := newSys(mk)
	perftest.PutBw(sysB, perftest.Options{Iters: 4 * o.Samples, Warmup: 200, ClearTrace: true})
	down := sysB.Nodes[0].Tap.TLPs(pcie.Down, pcie.MWr, 64, 64)
	r.Observed.LLPInjection = analyzer.Deltas(down).Summarize()
	sysB.Shutdown()

	// am_lat: reported latency minus half a measurement update (§4.3).
	sysA := newSys(mk)
	resA := perftest.AmLat(sysA, perftest.Options{Iters: o.Samples, Warmup: 50})
	r.Observed.LLPLatencyNs = resA.AdjustedNs
	sysA.Shutdown()

	// OSU message rate: the §6 observed injection overhead is the
	// inverse message rate.
	sysM := newSys(mk)
	resM := osu.MessageRate(sysM, osu.Options{Windows: o.Windows})
	r.Observed.OverallInjectionNs = resM.MeanInjNs
	sysM.Shutdown()

	// OSU latency: the §6 observed end-to-end latency.
	sysL := newSys(mk)
	resL := osu.Latency(sysL, osu.Options{Iters: o.Samples, Warmup: 50})
	r.Observed.E2ELatencyNs = resL.ReportedNs
	sysL.Shutdown()
}

// Validations assembles the paper's four model-vs-observed comparisons.
func (r *Result) Validations() []model.Validation {
	c := r.Components
	return []model.Validation{
		model.Validate("LLP injection (§4.2)", c.LLPInjection(), r.Observed.LLPInjection.Mean),
		model.Validate("LLP latency (§4.3)", c.LLPLatency(), r.Observed.LLPLatencyNs),
		model.Validate("Overall injection (§6)", c.OverallInjection(), r.Observed.OverallInjectionNs),
		model.Validate("E2E latency (§6)", c.E2ELatency(), r.Observed.E2ELatencyNs),
	}
}
