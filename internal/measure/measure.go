// Package measure re-executes the paper's measurement methodology inside
// the simulation and produces the measured Components table (the
// reproduction of Table 1) plus the observed benchmark values the models
// are validated against.
//
// Methodology rules from §3 are honoured:
//
//   - The profiling infrastructure is calibrated with empty scopes and its
//     mean overhead is subtracted from every measurement.
//   - Only one component is measured per run ("we do not simultaneously
//     measure time in any other component"); each sub-measurement below
//     builds a fresh system.
//   - Each reported value is a mean of at least 100 samples.
//   - Hardware components (PCIe, Wire, Switch, RC-to-MEM) are derived from
//     PCIe-analyzer trace deltas, never from software timers.
//
// Because every sub-measurement owns a fresh system, the campaign is a set
// of independent tasks: Run fans them out on a bounded worker pool
// (internal/campaign) and assembles the component table from the task
// slots afterwards. Each task's noise seed is derived from the campaign
// seed and the task name (rng.DeriveSeed), so a parallel campaign is
// bit-identical to a serial one at the same seed, whatever the pool width.
package measure

import (
	"fmt"

	"breakband/internal/analyzer"
	"breakband/internal/campaign"
	"breakband/internal/config"
	"breakband/internal/core/model"
	"breakband/internal/mpi"
	"breakband/internal/node"
	"breakband/internal/osu"
	"breakband/internal/pcie"
	"breakband/internal/perftest"
	"breakband/internal/rng"
	"breakband/internal/sim"
	"breakband/internal/stats"
	"breakband/internal/uct"
	"breakband/internal/units"
)

// Observed collects the benchmark-level observations of §4 and §6.
type Observed struct {
	// LLPInjection summarizes the PCIe-analyzer deltas of consecutive
	// downstream PIO posts during put_bw (Figure 7's distribution; its
	// mean is §4.2's observed injection overhead).
	LLPInjection stats.Summary
	// LLPLatencyNs is am_lat's reported latency after deducting half a
	// measurement update (§4.3).
	LLPLatencyNs float64
	// OverallInjectionNs is the inverse of the OSU message rate (§6).
	OverallInjectionNs float64
	// E2ELatencyNs is the OSU point-to-point latency (§6).
	E2ELatencyNs float64
}

// Result is the full measurement campaign outcome.
type Result struct {
	Components    model.Components
	Observed      Observed
	CalibrationNs stats.Summary
	// BusyPerOp is the tracked §6 busy-post rate in the message-rate
	// window.
	BusyPerOp float64
	// Extra holds methodology diagnostics (keyed free-form, reported in
	// EXPERIMENTS.md).
	Extra map[string]float64
}

// Opts sizes the campaign.
type Opts struct {
	// Samples is the per-component sample target (>= 100 per the paper).
	Samples int
	// Windows is the message-rate window count.
	Windows int
	// Parallelism bounds the campaign's worker pool. Zero (or negative)
	// selects runtime.GOMAXPROCS(0); 1 forces serial execution. The pool
	// width never changes results: every task runs on its own freshly
	// built system with a task-derived random stream.
	Parallelism int
}

// DefaultOpts returns the standard campaign sizing.
func DefaultOpts() Opts { return Opts{Samples: 400, Windows: 20} }

// Run executes the full methodology. mk must return a fresh, identically
// configured Config on every call (one per experiment run) and must be safe
// to call concurrently: tasks fan out on Opts.Parallelism workers.
func Run(mk func() *config.Config, o Opts) *Result {
	if o.Samples < 100 {
		o.Samples = 100
	}
	if o.Windows <= 0 {
		o.Windows = 20
	}
	s := &state{mk: mk, o: o, signalPeriod: mk().Bench.SignalPeriod}
	campaign.Run(o.Parallelism, s.tasks())
	return s.assemble()
}

// meanN carries a task's trace-derived mean together with its sample count;
// assemble enforces the paper's 100-sample floor on every meanN slot.
type meanN struct {
	mean float64
	n    int
}

// state holds one slot per campaign task. Tasks write only to their own
// slot; every cross-task derivation (component subtractions, the Extra
// diagnostics map) happens serially in assemble, which is what makes the
// parallel campaign semantically identical to the serial one.
type state struct {
	mk           func() *config.Config
	o            Opts
	signalPeriod int

	calibration stats.Summary
	stageMeans  [len(llpStages)]float64
	measUpdate  float64

	pcie    meanN
	wire    meanN
	network meanN
	rcDelta meanN

	hlpIsend, hlpUcp, hlpUct float64

	waitTotal      float64 // (d) successful MPI_Wait total
	ucpProgPerCall float64 // (e) ucp_worker_progress per call
	waitLoops      float64 // (e) progress loops per wait, same run
	uctProgTotal   float64 // (f) uct progress total per wait
	mpichCB        float64 // (g) MPICH receive callback
	ucpCBTotal     float64 // (h) UCP receive callback incl. nested MPICH
	afterProg      float64 // (i) MPICH work after a successful progress

	txWaitallTotal float64
	txMessages     float64
	txBusyPosts    float64

	obsInj        stats.Summary
	obsLLPLat     float64
	obsOverallInj float64
	obsE2E        float64
}

// llpStages are the §4.1 LLP regions, one profiled per run.
var llpStages = [...]uct.Stage{
	uct.StMDSetup, uct.StBarrierMD, uct.StBarrierDBC, uct.StPIOCopy,
	uct.StLLPPost, uct.StLLPProg, uct.StBusyPost,
}

// cfg builds one fresh config for the named task, with the task's noise
// seed derived from the campaign seed.
func (s *state) cfg(task string) *config.Config {
	c := s.mk()
	c.Seed = rng.DeriveSeed(c.Seed, task)
	return c
}

// sys builds the named task's fresh two-node system.
func (s *state) sys(task string) *node.System {
	return node.NewSystem(s.cfg(task), 2)
}

// tasks enumerates the campaign: every §3 "one component per run"
// sub-measurement as an isolated unit.
func (s *state) tasks() []campaign.Task {
	t := []campaign.Task{
		{Name: "calibration", Run: s.measureCalibration},
		{Name: "direct_costs", Run: s.measureDirectCosts},
		{Name: "pcie", Run: s.measurePCIe},
		{Name: "network/wire", Run: s.measureWire},
		{Name: "network/switched", Run: s.measureSwitched},
		{Name: "rc_to_mem", Run: s.measureRCToMem},
		{Name: "hlp/mpi_isend", Run: s.measureHLPTask("hlp/mpi_isend", "mpi_isend",
			func(r0 *mpi.Rank) { r0.ProfIsend = true }, &s.hlpIsend)},
		{Name: "hlp/ucp_tag_send_nb", Run: s.measureHLPTask("hlp/ucp_tag_send_nb", "ucp_tag_send_nb",
			func(r0 *mpi.Rank) { r0.ProfUcpSend = true }, &s.hlpUcp)},
		{Name: "hlp/llp_post", Run: s.measureHLPTask("hlp/llp_post", "llp_post",
			func(r0 *mpi.Rank) { r0.Worker.Uct.ProfStage = uct.StLLPPost }, &s.hlpUct)},
		{Name: "tx_progress", Run: s.measureTxProgress},
		{Name: "observed/put_bw", Run: s.measureObservedPutBw},
		{Name: "observed/am_lat", Run: s.measureObservedAmLat},
		{Name: "observed/osu_mr", Run: s.measureObservedMessageRate},
		{Name: "observed/osu_lat", Run: s.measureObservedLatency},
	}
	for i, st := range llpStages {
		i, st := i, st
		name := "llp/" + st.Name()
		t = append(t, campaign.Task{Name: name, Run: func() { s.measureLLPStage(name, i, st) }})
	}
	t = append(t, s.waitTasks()...)
	return t
}

// assemble combines the task slots into the Result. All arithmetic that
// crosses task boundaries (the Figure-9 subtraction, the §5/§6 layer
// subtractions) lives here, after every measurement has landed.
func (s *state) assemble() *Result {
	// Every trace-derived component needs >= 100 samples (§3).
	for _, src := range []struct {
		name string
		m    meanN
	}{
		{"PCIe round trips", s.pcie},
		{"wire trace deltas", s.wire},
		{"switched-network trace deltas", s.network},
		{"pong->ping deltas", s.rcDelta},
	} {
		if src.m.n < 100 {
			panic(fmt.Sprintf("measure: only %d %s captured", src.m.n, src.name))
		}
	}

	r := &Result{Extra: map[string]float64{}}
	c := &r.Components
	c.SignalPeriod = s.signalPeriod
	r.CalibrationNs = s.calibration

	// --- LLP component times (§4.1) and the benchmark-owned region ---
	c.MDSetup = s.stageMeans[0]
	c.BarrierMD = s.stageMeans[1]
	c.BarrierDBC = s.stageMeans[2]
	c.PIOCopy = s.stageMeans[3]
	c.LLPPost = s.stageMeans[4]
	c.LLPProg = s.stageMeans[5]
	c.BusyPost = s.stageMeans[6]
	c.MeasUpdate = s.measUpdate

	// --- trace-derived hardware components (§4.3) ---
	c.PCIe = s.pcie.mean
	c.Wire = s.wire.mean
	c.Switch = s.network.mean - s.wire.mean
	r.Extra["network_one_way"] = s.network.mean
	// delta = RC-to-MEM(8B) + 2*PCIe + LLP_prog + LLP_post (Figure 9).
	c.RCToMem8 = s.rcDelta.mean - 2*c.PCIe - c.LLPProg - c.LLPPost
	// The 64-byte completion write commits in the same cache line;
	// documented assumption (the paper does not report RC-to-MEM(64B)).
	c.RCToMem64 = c.RCToMem8
	r.Extra["pong_ping_delta"] = s.rcDelta.mean

	// --- HLP initiation (§5): layer times by subtracting nested totals ---
	c.HLPPostMPICH = s.hlpIsend - s.hlpUcp
	c.HLPPostUCP = s.hlpUcp - s.hlpUct
	r.Extra["mpi_isend_total"] = s.hlpIsend
	r.Extra["ucp_tag_send_nb_total"] = s.hlpUcp
	r.Extra["llp_post_in_mpi"] = s.hlpUct

	// --- MPI_Wait breakdown (§5) ---
	sumUcp := s.ucpProgPerCall * s.waitLoops
	ucpCBAlone := s.ucpCBTotal - s.mpichCB
	c.MPICHRecvCB = s.mpichCB
	c.UCPRecvCB = ucpCBAlone
	c.MPICHAfterPr = s.afterProg
	// "Subtracting the total time of ucp_worker_progress from that of
	// MPI_Wait and adding in the time of the MPICH callback gives us the
	// time spent in MPICH" (§5); symmetrically for UCP above UCT.
	c.WaitMPICH = s.waitTotal - sumUcp + s.mpichCB
	c.WaitUCP = sumUcp - s.uctProgTotal + ucpCBAlone
	r.Extra["mpi_wait_total"] = s.waitTotal
	r.Extra["ucp_progress_per_call"] = s.ucpProgPerCall
	r.Extra["wait_loops_per_wait"] = s.waitLoops
	r.Extra["uct_progress_total_per_wait"] = s.uctProgTotal
	r.Extra["ucp_recv_cb_total"] = s.ucpCBTotal

	// --- send-side progress (§6) ---
	// Deduct the deferred LLP_posts that UCP executed inside MPI_Waitall
	// for busy posts (§6 caveat one).
	postProg := (s.txWaitallTotal - s.txBusyPosts*c.LLPPost) / s.txMessages
	// The LLP's share is one LLP_prog amortized over the unsignaled
	// completion period c (§6).
	llpShare := c.LLPProg / float64(c.SignalPeriod)
	c.LLPTxProg = llpShare
	c.HLPTxProg = postProg - llpShare
	c.MiscPerOp = s.txBusyPosts * c.BusyPost / s.txMessages
	r.BusyPerOp = s.txBusyPosts / s.txMessages
	r.Extra["waitall_per_op"] = s.txWaitallTotal / s.txMessages
	r.Extra["post_prog"] = postProg

	// --- observed values (§4.2, §4.3, §6) ---
	r.Observed = Observed{
		LLPInjection:       s.obsInj,
		LLPLatencyNs:       s.obsLLPLat,
		OverallInjectionNs: s.obsOverallInj,
		E2ELatencyNs:       s.obsE2E,
	}
	return r
}

// --- profiling-infrastructure calibration ---

func (s *state) measureCalibration() {
	sys := s.sys("calibration")
	sys.K.Spawn("calibrate", func(p *sim.Proc) {
		s.calibration = sys.Nodes[0].Prof.Calibrate(p, sys.Cfg.Prof.CalibrationSamples)
	})
	sys.Run()
	sys.Shutdown()
}

// --- LLP component times (§4.1), one profiled stage per run ---

func (s *state) measureLLPStage(task string, slot int, st uct.Stage) {
	sys := s.sys(task)
	res := perftest.PutBw(sys, perftest.Options{
		Iters: s.o.Samples + s.o.Samples/4, Warmup: 100,
		ProfStage: st, Calibrate: true,
	})
	s.stageMeans[slot] = res.Worker.Node.Prof.MeanNs(st.Name())
	sys.Shutdown()
}

// measureDirectCosts profiles the benchmark-owned region (the measurement
// update) the same way the paper wraps it with UCS profiling.
func (s *state) measureDirectCosts() {
	sys := s.sys("direct_costs")
	cfg := sys.Cfg
	n0 := sys.Nodes[0]
	sys.K.Spawn("direct_costs", func(p *sim.Proc) {
		prof := n0.Prof
		prof.Calibrate(p, cfg.Prof.CalibrationSamples)
		for i := 0; i < s.o.Samples; i++ {
			tok := prof.Begin(p, "meas_update")
			p.Advance(cfg.SW.MeasUpdate.Sample(n0.Rand))
			prof.End(p, tok)
		}
		s.measUpdate = prof.MeanNs("meas_update")
	})
	sys.Run()
	sys.Shutdown()
}

// --- PCIe (§4.3): half the TLP->ACK round trip at the analyzer ---

func (s *state) measurePCIe() {
	sys := s.sys("pcie")
	perftest.PutBw(sys, perftest.Options{Iters: s.o.Samples, Warmup: 100, ClearTrace: true})
	// The NIC's completion DMA-writes are upstream MWr transactions; each
	// is matched with its ACK DLLP from the RC.
	rt := sys.Nodes[0].Tap.AckRoundTrips(pcie.Up, pcie.MWr)
	s.pcie = meanN{rt.Mean(), rt.N()}
	sys.Shutdown()
}

// --- Wire and Switch (§4.3): am_lat trace deltas with and without the
// switch; the difference isolates the switch ---

func networkFromTrace(tap *analyzer.Analyzer) *stats.Sample {
	// Downstream 64B MWr (the PIO ping) to the next upstream 64B MWr
	// (the ping's completion, generated on the ACK from the target NIC):
	// the delta spans the network twice.
	deltas := tap.PairDeltas(
		func(rec analyzer.Record) bool {
			return rec.IsTLP && rec.Dir == pcie.Down && rec.TLPType == pcie.MWr && rec.Payload == 64
		},
		func(rec analyzer.Record) bool {
			return rec.IsTLP && rec.Dir == pcie.Up && rec.TLPType == pcie.MWr && rec.Payload == 64
		},
	)
	var half stats.Sample
	for _, d := range deltas.Values() {
		half.Add(d / 2)
	}
	return &half
}

func (s *state) measureWire() {
	// Direct NIC-to-NIC cabling isolates the cable.
	cfg := s.cfg("network/wire")
	cfg.Fabric.UseSwitch = false
	sys := node.NewSystem(cfg, 2)
	perftest.AmLat(sys, perftest.Options{Iters: s.o.Samples, Warmup: 50, ClearTrace: true})
	wire := networkFromTrace(sys.Nodes[0].Tap)
	s.wire = meanN{wire.Mean(), wire.N()}
	sys.Shutdown()
}

func (s *state) measureSwitched() {
	sys := s.sys("network/switched")
	perftest.AmLat(sys, perftest.Options{Iters: s.o.Samples, Warmup: 50, ClearTrace: true})
	network := networkFromTrace(sys.Nodes[0].Tap)
	s.network = meanN{network.Mean(), network.N()}
	sys.Shutdown()
}

// --- RC-to-MEM(8B) (§4.3, Figure 9): inbound-pong to outbound-ping delta;
// the already-measured components are subtracted in assemble ---

func (s *state) measureRCToMem() {
	sys := s.sys("rc_to_mem")
	// One pong->ping pair per iteration boundary: run a margin past the
	// sample target so the trace yields at least o.Samples pairs.
	res := perftest.AmLat(sys, perftest.Options{Iters: s.o.Samples + 20, Warmup: 50, ClearTrace: true})
	rcq := res.Ep0.QP().RecvCQ.Region
	deltas := sys.Nodes[0].Tap.PairDeltas(
		// Inbound pong: the upstream DMA write into the initiator's
		// receive completion queue.
		func(rec analyzer.Record) bool {
			return rec.IsTLP && rec.Dir == pcie.Up && rec.TLPType == pcie.MWr &&
				rcq.Contains(rec.Addr, rec.Payload)
		},
		// Outgoing ping: the next downstream 64-byte PIO post.
		func(rec analyzer.Record) bool {
			return rec.IsTLP && rec.Dir == pcie.Down && rec.TLPType == pcie.MWr && rec.Payload == 64
		},
	)
	s.rcDelta = meanN{deltas.Mean(), deltas.N()}
	sys.Shutdown()
}

// --- HLP initiation (§5): one profiled scope per run ---

func (s *state) measureHLPTask(task, scope string, setup func(r0 *mpi.Rank), slot *float64) func() {
	return func() {
		sys := s.sys(task)
		res := osu.Latency(sys, osu.Options{
			Iters: s.o.Samples, Warmup: 50, Calibrate: true,
			Setup: func(r0, r1 *mpi.Rank) { setup(r0) },
		})
		*slot = res.Rank0.Node.Prof.MeanNs(scope)
		sys.Shutdown()
	}
}

// --- MPI_Wait breakdown (§5): totals and callbacks across runs, combined
// with per-wait loop counts ---

// waitWorkload drives "successful (i.e. no busy waiting) MPI_Wait" calls
// (§5): rank 1 sends on a fixed schedule; rank 0 posts the receive before
// each message arrives and calls MPI_Wait only after it has landed, so every
// wait completes on its first progress pass.
func waitWorkload(sys *node.System, samples int, setup func(r0 *mpi.Rank)) *mpi.Rank {
	cfg := sys.Cfg
	comm := mpi.NewComm(sys.Nodes[:2], cfg, uct.PIOInline)
	r0, r1 := comm.Ranks[0], comm.Ranks[1]
	setup(r0)
	// The waiter calibrates its profiler first (~100 us of simulated
	// time); traffic starts afterwards.
	const (
		start  = 500 * units.Microsecond
		period = 5 * units.Microsecond
	)
	sleepUntil := func(p *sim.Proc, t units.Time) {
		if t > p.Now() {
			p.Sleep(t - p.Now())
		}
	}
	data := make([]byte, 8)
	sys.K.Spawn("wait_workload.sender", func(p *sim.Proc) {
		t := p.Task()
		r1.PreparePostedRecvs(t, 64)
		for i := 0; i < samples; i++ {
			sleepUntil(p, start+units.Time(i)*period)
			r1.Isend(t, 0, i, data)
			// Keep the transport retiring unsignaled batches.
			r1.Worker.Progress(t)
		}
	})
	sys.K.Spawn("wait_workload.waiter", func(p *sim.Proc) {
		t := p.Task()
		r0.Node.Prof.Calibrate(p, cfg.Prof.CalibrationSamples)
		r0.PreparePostedRecvs(t, 512)
		for i := 0; i < samples; i++ {
			sleepUntil(p, start+units.Time(i)*period)
			req := r0.Irecv(t, 1, i)
			// The message lands ~1.4 us in; wait at +3 us so the
			// completion is already in the queue.
			sleepUntil(p, start+units.Time(i)*period+3*units.Microsecond)
			r0.Wait(t, req)
		}
	})
	sys.Run()
	sys.Shutdown()
	return r0
}

// waitTasks builds the six §5 runs (d)..(i), each an isolated workload with
// one profiled scope.
func (s *state) waitTasks() []campaign.Task {
	run := func(task string, setup func(r0 *mpi.Rank), collect func(r0 *mpi.Rank)) campaign.Task {
		return campaign.Task{Name: task, Run: func() {
			r0 := waitWorkload(s.sys(task), s.o.Samples, setup)
			collect(r0)
		}}
	}
	return []campaign.Task{
		// (d) Total successful MPI_Wait for a receive.
		run("wait/total",
			func(r0 *mpi.Rank) { r0.ProfWait = true },
			func(r0 *mpi.Rank) { s.waitTotal = r0.Node.Prof.MeanNs("mpi_wait_recv") }),
		// (e) ucp_worker_progress per call inside receive waits, with the
		// loops-per-wait count from the same run.
		run("wait/ucp_progress",
			func(r0 *mpi.Rank) { r0.ProfUcpProg = true },
			func(r0 *mpi.Rank) {
				s.ucpProgPerCall = r0.Node.Prof.MeanNs("ucp_worker_progress")
				s.waitLoops = float64(r0.Stats.RecvWaitLoops) / float64(r0.Stats.RecvWaits)
			}),
		// (f) uct_worker_progress inside receive waits: successful dequeues
		// and empty polls are separate scopes; totals reconstruct from
		// counts.
		run("wait/uct_progress",
			func(r0 *mpi.Rank) { r0.ProfUctInWait = uct.StLLPProg },
			func(r0 *mpi.Rank) {
				prof := r0.Node.Prof
				waits := float64(r0.Stats.RecvWaits)
				success := prof.Sample(uct.StLLPProg.Name())
				total := success.Mean() * float64(success.N()) / waits
				if empty := prof.Sample("empty_poll"); empty != nil && empty.N() > 0 {
					total += empty.Mean() * float64(empty.N()) / waits
				}
				s.uctProgTotal = total
			}),
		// (g) MPICH receive callback.
		run("wait/mpich_cb",
			func(r0 *mpi.Rank) { r0.ProfMpichCB = true },
			func(r0 *mpi.Rank) { s.mpichCB = r0.Node.Prof.MeanNs("mpich_recv_cb") }),
		// (h) UCP receive callback including the nested MPICH callback.
		run("wait/ucp_cb",
			func(r0 *mpi.Rank) { r0.Worker.ProfRecvCB = true },
			func(r0 *mpi.Rank) { s.ucpCBTotal = r0.Node.Prof.MeanNs("ucp_recv_cb") }),
		// (i) MPICH work after a successful progress.
		run("wait/after_progress",
			func(r0 *mpi.Rank) { r0.ProfAfterProg = true },
			func(r0 *mpi.Rank) { s.afterProg = r0.Node.Prof.MeanNs("mpich_after_progress") }),
	}
}

// --- Send-side progress (§6): MPI_Waitall totals; the busy-post LLP_post
// deduction happens in assemble ---

func (s *state) measureTxProgress() {
	sys := s.sys("tx_progress")
	res := osu.MessageRate(sys, osu.Options{Windows: s.o.Windows})
	s.txMessages = float64(res.Messages)
	s.txBusyPosts = float64(res.BusyPosts)
	s.txWaitallTotal = res.WaitallTotalNs
	sys.Shutdown()
}

// --- Observed values (§4.2, §4.3, §6) ---

func (s *state) measureObservedPutBw() {
	// put_bw: injection overhead observed by the NIC = deltas of
	// consecutive downstream PIO posts on the analyzer (Figures 6 and 7).
	sys := s.sys("observed/put_bw")
	perftest.PutBw(sys, perftest.Options{Iters: 4 * s.o.Samples, Warmup: 200, ClearTrace: true})
	down := sys.Nodes[0].Tap.TLPs(pcie.Down, pcie.MWr, 64, 64)
	s.obsInj = analyzer.Deltas(down).Summarize()
	sys.Shutdown()
}

func (s *state) measureObservedAmLat() {
	// am_lat: reported latency minus half a measurement update (§4.3).
	sys := s.sys("observed/am_lat")
	res := perftest.AmLat(sys, perftest.Options{Iters: s.o.Samples, Warmup: 50})
	s.obsLLPLat = res.AdjustedNs
	sys.Shutdown()
}

func (s *state) measureObservedMessageRate() {
	// OSU message rate: the §6 observed injection overhead is the
	// inverse message rate.
	sys := s.sys("observed/osu_mr")
	res := osu.MessageRate(sys, osu.Options{Windows: s.o.Windows})
	s.obsOverallInj = res.MeanInjNs
	sys.Shutdown()
}

func (s *state) measureObservedLatency() {
	// OSU latency: the §6 observed end-to-end latency.
	sys := s.sys("observed/osu_lat")
	res := osu.Latency(sys, osu.Options{Iters: s.o.Samples, Warmup: 50})
	s.obsE2E = res.ReportedNs
	sys.Shutdown()
}

// Validations assembles the paper's four model-vs-observed comparisons.
func (r *Result) Validations() []model.Validation {
	c := r.Components
	return []model.Validation{
		model.Validate("LLP injection (§4.2)", c.LLPInjection(), r.Observed.LLPInjection.Mean),
		model.Validate("LLP latency (§4.3)", c.LLPLatency(), r.Observed.LLPLatencyNs),
		model.Validate("Overall injection (§6)", c.OverallInjection(), r.Observed.OverallInjectionNs),
		model.Validate("E2E latency (§6)", c.E2ELatency(), r.Observed.E2ELatencyNs),
	}
}
