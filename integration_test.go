package breakband

import (
	"math"
	"testing"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/perftest"
	"breakband/internal/sim"
	"breakband/internal/units"
	"breakband/internal/verbs"
)

// TestAnalyzerPassivity asserts the DESIGN.md promise behind the paper's §3
// claim ("the overhead of the PCIe analyzer is negligible... a passive
// instrument"): enabling or disabling the trace tap changes nothing about
// simulated timing.
func TestAnalyzerPassivity(t *testing.T) {
	t.Parallel()
	run := func(tapEnabled bool) (float64, float64) {
		sys := node.NewSystem(config.TX2CX4(config.NoiseOff, 1, true), 2)
		defer sys.Shutdown()
		sys.Nodes[0].Tap.SetEnabled(tapEnabled)
		sys.Nodes[1].Tap.SetEnabled(tapEnabled)
		pb := perftest.PutBw(sys, perftest.Options{Iters: 500})
		sysL := node.NewSystem(config.TX2CX4(config.NoiseOff, 1, true), 2)
		defer sysL.Shutdown()
		sysL.Nodes[0].Tap.SetEnabled(tapEnabled)
		lat := perftest.AmLat(sysL, perftest.Options{Iters: 200})
		return pb.MeanInjNs, lat.ReportedNs
	}
	injOn, latOn := run(true)
	injOff, latOff := run(false)
	if injOn != injOff || latOn != latOff {
		t.Errorf("analyzer perturbed timing: inj %v vs %v, lat %v vs %v",
			injOn, injOff, latOn, latOff)
	}
}

// TestVerbsMatchesUCTTiming drives the same ping-pong through the verbs API
// and through uct: two LLP front-ends over identical hardware and calibrated
// costs must produce near-identical latency (the verbs path posts inline +
// signaled, the uct am path adds only its receive dispatch).
func TestVerbsMatchesUCTTiming(t *testing.T) {
	t.Parallel()
	cfg := config.TX2CX4(config.NoiseOff, 1, true)

	// --- verbs ping-pong ---
	sysV := node.NewSystem(cfg, 2)
	c0 := verbs.Open(sysV.Nodes[0], cfg)
	c1 := verbs.Open(sysV.Nodes[1], cfg)
	q0 := c0.CreateQP(128, 1024)
	q1 := c1.CreateQP(128, 1024)
	verbs.Connect(q0, q1)
	rx0 := sysV.Nodes[0].Mem.Alloc("rx0", 4096, 64)
	rx1 := sysV.Nodes[1].Mem.Alloc("rx1", 4096, 64)

	const iters = 200
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	var verbsOneWay float64

	sysV.K.Spawn("verbs.responder", func(p *sim.Proc) {
		tk := p.Task()
		wcs := make([]verbs.WC, 1)
		q1.PostRecv(tk, &verbs.RecvWR{SGE: verbs.SGE{Addr: rx1.Base, Length: 4096}})
		for i := 0; i < iters; i++ {
			for q1.PollRecvCQ(tk, wcs) == 0 {
			}
			q1.PostRecv(tk, &verbs.RecvWR{SGE: verbs.SGE{Addr: rx1.Base, Length: 4096}})
			q1.PostSend(tk, &verbs.SendWR{
				Opcode: verbs.WROpSend, Flags: verbs.SendSignaled | verbs.SendInline,
				InlineData: payload,
			})
			// Drain the pong's send completion while idle.
			for q1.Outstanding() > 0 && q1.PollSendCQ(tk, wcs) > 0 {
			}
		}
	})
	sysV.K.Spawn("verbs.initiator", func(p *sim.Proc) {
		tk := p.Task()
		wcs := make([]verbs.WC, 1)
		q0.PostRecv(tk, &verbs.RecvWR{SGE: verbs.SGE{Addr: rx0.Base, Length: 4096}})
		start := p.Now()
		for i := 0; i < iters; i++ {
			q0.PostSend(tk, &verbs.SendWR{
				Opcode: verbs.WROpSend, Flags: verbs.SendSignaled | verbs.SendInline,
				InlineData: payload,
			})
			for q0.PollRecvCQ(tk, wcs) == 0 {
			}
			q0.PostRecv(tk, &verbs.RecvWR{SGE: verbs.SGE{Addr: rx0.Base, Length: 4096}})
			for q0.Outstanding() > 0 && q0.PollSendCQ(tk, wcs) > 0 {
			}
		}
		verbsOneWay = (p.Now() - start).Ns() / float64(2*iters)
	})
	sysV.Run()
	sysV.Shutdown()

	// --- uct reference ---
	sysU := node.NewSystem(cfg, 2)
	uctLat := perftest.AmLat(sysU, perftest.Options{Iters: iters}).ReportedNs
	sysU.Shutdown()

	// Same hardware, same calibrated post/poll costs: within a handful of
	// per-iteration bookkeeping nanoseconds of each other.
	if math.Abs(verbsOneWay-uctLat) > 120 {
		t.Errorf("verbs one-way %.2f ns vs uct %.2f ns: LLP front-ends diverge", verbsOneWay, uctLat)
	}
	if verbsOneWay < 900 || verbsOneWay > 1400 {
		t.Errorf("verbs one-way %.2f ns implausible", verbsOneWay)
	}
}

// TestGenCompletionEmergent measures the §4.2 gen_completion quantity
// directly in the simulator — from a post's arrival at the NIC to its
// completion commit — and checks the model formula against it.
func TestGenCompletionEmergent(t *testing.T) {
	t.Parallel()
	cfg := config.TX2CX4(config.NoiseOff, 1, true)
	sys := node.NewSystem(cfg, 2)
	defer sys.Shutdown()
	res := perftest.AmLat(sys, perftest.Options{Iters: 50, ClearTrace: true})
	_ = res
	// On the trace: downstream ping (observed arriving at the NIC) to the
	// upstream completion CQE (observed leaving the NIC) spans exactly
	// the two Network traversals of gen_completion — the PCIe legs and
	// the RC-to-MEM commit lie outside the tap window. This is the same
	// geometry the paper's Network measurement exploits.
	tap := sys.Nodes[0].Tap
	deltas := tap.PairDeltas(
		func(r record) bool { return r.IsTLP && r.Dir == pcieDown && r.TLPType == pcieMWr && r.Payload == 64 },
		func(r record) bool { return r.IsTLP && r.Dir == pcieUp && r.TLPType == pcieMWr && r.Payload == 64 },
	)
	got := deltas.Mean()
	want := 2 * config.TabNetwork
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("network share of gen_completion = %.2f ns, model %.2f", got, want)
	}
	_ = units.Nanosecond
}
