package main

import (
	"breakband"
	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/pcie"
)

func pcieDown() pcie.Dir    { return pcie.Down }
func pcieMWr() pcie.TLPType { return pcie.MWr }

func noiseLevel(o breakband.Options) config.NoiseLevel {
	if o.Noise {
		return config.NoiseOn
	}
	return config.NoiseOff
}

func seedOf(o breakband.Options) uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func systemOf(cfg *config.Config) *node.System {
	return node.NewSystem(cfg, 2)
}
