package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"breakband"
	"breakband/internal/core/whatif"
	"breakband/internal/report"
)

var flagOut = flag.String("out", "figures", "output directory for the csv command")

// exportCSV writes every figure's data as CSV for external plotting.
func exportCSV() {
	if err := os.MkdirAll(*flagOut, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "breakband: %v\n", err)
		os.Exit(1)
	}
	res := breakband.Reproduce(opts())
	c := res.Components()

	write := func(name, content string) {
		path := filepath.Join(*flagOut, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "breakband: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}

	// Breakdown figures: one row per labelled part, in figure order.
	bds := res.Breakdowns()
	for _, name := range []string{"fig4", "fig8", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16"} {
		t := &report.Table{Headers: []string{"bar", "label", "ns", "pct"}}
		for _, b := range bds[name] {
			for _, p := range b.Parts {
				t.AddRow(b.Title, p.Label,
					fmt.Sprintf("%.4f", p.Ns), fmt.Sprintf("%.4f", p.Pct))
			}
		}
		write(name+".csv", t.CSV())
	}

	// What-if curves: reduction vs speedup per series.
	for _, fig := range []struct {
		name   string
		series []whatif.Series
	}{
		{"fig17a", whatif.Fig17aCPUInjection(c)},
		{"fig17b", whatif.Fig17bCPULatency(c)},
		{"fig17c", whatif.Fig17cIOLatency(c)},
		{"fig17d", whatif.Fig17dNetworkLatency(c)},
	} {
		write(fig.name+".csv", report.SeriesTable("", fig.series).CSV())
	}

	// Table 1 as measured-vs-paper rows.
	t1 := &report.Table{Headers: []string{"component", "measured_ns", "paper_ns"}}
	paper := breakband.PaperComponents()
	for _, row := range []struct {
		name         string
		ours, theirs float64
	}{
		{"md_setup", c.MDSetup, paper.MDSetup},
		{"barrier_md", c.BarrierMD, paper.BarrierMD},
		{"barrier_dbc", c.BarrierDBC, paper.BarrierDBC},
		{"pio_copy", c.PIOCopy, paper.PIOCopy},
		{"llp_post_misc", c.LLPPostMisc(), paper.LLPPostMisc()},
		{"llp_post", c.LLPPost, paper.LLPPost},
		{"llp_prog", c.LLPProg, paper.LLPProg},
		{"busy_post", c.BusyPost, paper.BusyPost},
		{"meas_update", c.MeasUpdate, paper.MeasUpdate},
		{"pcie", c.PCIe, paper.PCIe},
		{"wire", c.Wire, paper.Wire},
		{"switch", c.Switch, paper.Switch},
		{"rc_to_mem_8b", c.RCToMem8, paper.RCToMem8},
		{"mpi_isend_mpich", c.HLPPostMPICH, paper.HLPPostMPICH},
		{"mpi_isend_ucp", c.HLPPostUCP, paper.HLPPostUCP},
		{"mpich_recv_cb", c.MPICHRecvCB, paper.MPICHRecvCB},
		{"mpi_wait_mpich", c.WaitMPICH, paper.WaitMPICH},
		{"ucp_recv_cb", c.UCPRecvCB, paper.UCPRecvCB},
		{"mpi_wait_ucp", c.WaitUCP, paper.WaitUCP},
	} {
		t1.AddRow(row.name, fmt.Sprintf("%.4f", row.ours), fmt.Sprintf("%.4f", row.theirs))
	}
	write("table1.csv", t1.CSV())

	// Validations.
	tv := &report.Table{Headers: []string{"quantity", "modeled_ns", "observed_ns", "err_pct"}}
	for _, v := range res.Validations() {
		tv.AddRow(v.Name, fmt.Sprintf("%.4f", v.ModeledNs),
			fmt.Sprintf("%.4f", v.ObservedNs), fmt.Sprintf("%.4f", v.ErrPct))
	}
	write("validations.csv", tv.CSV())
}
