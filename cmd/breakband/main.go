// Command breakband regenerates every table and figure of the paper's
// evaluation from the calibrated simulation, validates the analytical models
// against observed benchmark performance, and runs the what-if and ablation
// studies.
//
// Usage:
//
//	breakband [flags] <command>
//
// Commands:
//
//	table1    measured component table vs the paper's Table 1
//	validate  the four model-vs-observed comparisons (§4.2, §4.3, §6)
//	fig4 fig6 fig7 fig8 fig10 fig11 fig12 fig13 fig14 fig15 fig16
//	fig17 fig17a fig17b fig17c fig17d
//	whatif    the §7 optimization scenarios with likelihood notes
//	simcheck  verify Figure-17 predictions against live simulation
//	ablate    post-mode / unsignaled / multicore / switch ablations
//	bench     raw benchmark numbers (put_bw, am_lat, OSU mr, OSU latency)
//	all       everything above, in order
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"breakband"
	"breakband/internal/campaign"
	"breakband/internal/config"
	"breakband/internal/core/whatif"
	"breakband/internal/node"
	"breakband/internal/osu"
	"breakband/internal/perftest"
	"breakband/internal/report"
	"breakband/internal/stats"
	"breakband/internal/uct"
)

var (
	flagNoise    = flag.Bool("noise", false, "enable the stochastic timing model")
	flagSeed     = flag.Uint64("seed", 1, "random seed (with -noise)")
	flagDirect   = flag.Bool("direct", false, "cable the NICs back to back (no switch)")
	flagSamples  = flag.Int("samples", 400, "samples per measured component (>=100)")
	flagWindows  = flag.Int("windows", 20, "message-rate windows")
	flagFig7N    = flag.Int("fig7-iters", 20000, "put_bw iterations for the Figure-7 histogram")
	flagParallel = flag.Int("parallel", 0, "campaign/sweep worker pool (0 = GOMAXPROCS, 1 = serial)")
)

func opts() breakband.Options {
	return breakband.Options{
		Noise:       *flagNoise,
		Seed:        *flagSeed,
		DirectCable: *flagDirect,
		Samples:     *flagSamples,
		Windows:     *flagWindows,
		Parallelism: *flagParallel,
	}
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: breakband [flags] <command>\nrun 'go doc breakband/cmd/breakband' for commands\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := strings.ToLower(flag.Arg(0))
	switch cmd {
	case "table1":
		res := breakband.Reproduce(opts())
		fmt.Print(res.Table1())
	case "validate":
		res := breakband.Reproduce(opts())
		fmt.Print(res.RenderValidations())
	case "fig6":
		fig6()
	case "fig7":
		fig7()
	case "fig4", "fig8", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"fig17", "fig17a", "fig17b", "fig17c", "fig17d":
		res := breakband.Reproduce(opts())
		fmt.Print(res.Figure(cmd))
	case "whatif":
		res := breakband.Reproduce(opts())
		for _, opt := range res.WhatIf() {
			fmt.Printf("%s [%s]\n  likelihood: %s\n  %s\n  curve: %s\n\n",
				opt.Name, opt.Target, opt.Likelihood, opt.Discussion, opt.Series)
		}
	case "simcheck":
		simcheck()
	case "ablate":
		ablate()
	case "bench":
		bench()
	case "csv":
		exportCSV()
	case "all":
		res := breakband.Reproduce(opts())
		fmt.Print(res.Table1())
		fmt.Println()
		fmt.Print(res.RenderValidations())
		fmt.Println()
		fig6()
		fmt.Println()
		fig7()
		for _, f := range []string{"fig4", "fig8", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17"} {
			fmt.Printf("\n--- %s ---\n%s", f, res.Figure(f))
		}
		fmt.Println()
		simcheck()
		fmt.Println()
		ablate()
	default:
		fmt.Fprintf(os.Stderr, "breakband: unknown command %q\n", cmd)
		os.Exit(2)
	}
}

// fig6 prints a PCIe trace snippet of downstream transactions during put_bw,
// like the paper's Figure 6.
func fig6() {
	sys := opts().NewSystem()
	defer sys.Shutdown()
	// Warmup past the transmit-queue depth so the trace shows the busy-post
	// steady state the paper's Figure 6 captures.
	perftest.PutBw(sys, perftest.Options{Iters: 64, Warmup: 300, ClearTrace: true})
	recs := sys.Nodes[0].Tap.TLPs(pcieDown(), pcieMWr(), 64, 64)
	fmt.Println("Fig 6: PCIe trace of downstream transactions (put_bw, 8B payload PIO posts)")
	fmt.Printf("%-6s %-14s %-6s %-9s %-10s\n", "#", "TIME", "KIND", "PAYLOAD", "DELTA(ns)")
	for i, r := range recs {
		if i >= 12 {
			fmt.Printf("... (%d more)\n", len(recs)-i)
			break
		}
		delta := "-"
		if i > 0 {
			delta = fmt.Sprintf("%.2f", (r.At - recs[i-1].At).Ns())
		}
		fmt.Printf("%-6d %-14s %-6s %-9d %-10s\n", i, r.At, r.Kind(), r.Payload, delta)
	}
}

// fig7 renders the observed injection-overhead distribution histogram.
func fig7() {
	o := opts()
	res := breakband.RunPutBw(o, *flagFig7N)
	s := res.InjDist
	fmt.Println("Fig 7: distribution of the observed injection overhead (ns)")
	fmt.Printf("Mean: %.2f  Median: %.2f  Min: %.2f  Max: %.2f  Std dev: %.4f  (n=%d)\n",
		s.Mean, s.Median, s.Min, s.Max, s.Std, s.N)
	fmt.Println(breakband.Fig7PaperLine())
	h := stats.NewHistogram(150, 500, 28)
	h.FromSample(res.InjSample)
	fmt.Print(report.HistogramText(h, 50))
}

// simcheck verifies the §7 claim that simulated optimizations match the
// analytical linear speedups.
func simcheck() {
	fmt.Println("Simulation-backed what-if verification (paper §7: a system simulator")
	fmt.Println("reproduces the analytical linear speedups):")
	o := opts()
	for _, c := range []struct {
		comp breakband.Component
		m    breakband.Metric
		r    int
	}{
		{breakband.CompPIO, breakband.Injection, 84},
		{breakband.CompPIO, breakband.Latency, 84},
		{breakband.CompIO, breakband.Latency, 50},
		{breakband.CompSwitch, breakband.Latency, 70},
		{breakband.CompWire, breakband.Latency, 50},
		{breakband.CompHLPPost, breakband.Injection, 20},
		{breakband.CompRCToMem, breakband.Latency, 50},
	} {
		fmt.Println("  " + breakband.SimulateOptimization(o, c.comp, c.m, c.r).String())
	}
}

// ablate runs the design-choice ablations from DESIGN.md. Every sweep point
// is an isolated fresh system, so all of them fan out on the -parallel pool
// and print in deterministic order once complete.
func ablate() {
	o := opts()
	par := *flagParallel

	fmt.Println("X1: descriptor-delivery path (am_lat one-way latency, adjusted ns)")
	modes := []uct.PostMode{uct.PIOInline, uct.DoorbellInline, uct.DoorbellGather}
	for i, adj := range campaign.Map(par, modes, func(_ int, mode uct.PostMode) float64 {
		sys := o.NewSystem()
		defer sys.Shutdown()
		return perftest.AmLat(sys, perftest.Options{Iters: 400, Mode: mode}).AdjustedNs
	}) {
		fmt.Printf("  %-17s %8.2f ns\n", modes[i], adj)
	}

	fmt.Println("X2: unsignaled completion period c (OSU message rate, ns/msg)")
	periods := []int{1, 4, 16, 64}
	for i, res := range campaign.Map(par, periods, func(_, c int) *osu.MessageRateResult {
		cfg := config.TX2CX4(noiseLevel(o), seedOf(o), !o.DirectCable)
		cfg.Bench.SignalPeriod = c
		sys := systemOf(cfg)
		defer sys.Shutdown()
		return osu.MessageRate(sys, osu.Options{Windows: 12})
	}) {
		fmt.Printf("  c=%-3d %8.2f ns/msg (%d busy posts)\n", periods[i], res.MeanInjNs, res.BusyPosts)
	}

	fmt.Println("X3: multi-core injection (aggregate put_bw; fine-grained communication,")
	fmt.Println("    one QP per core — the paper's strong-scaling limit scenario)")
	coreCounts := []int{1, 2, 4, 8, 16, 32, 64}
	for _, res := range perftest.MultiCoreSweep(o.NewSystem, coreCounts, perftest.Options{Iters: 1500}, par) {
		fmt.Printf("  cores=%-3d %8.2f ns/msg aggregate (%d PCIe credit stalls)\n",
			res.Cores, res.PerMsgNs, res.LinkBlocked)
	}

	fmt.Println("X4: switch vs direct cabling (am_lat, adjusted ns)")
	for i, adj := range campaign.Map(par, []bool{false, true}, func(_ int, direct bool) float64 {
		oo := o
		oo.DirectCable = direct
		sys := oo.NewSystem()
		defer sys.Shutdown()
		return perftest.AmLat(sys, perftest.Options{Iters: 400}).AdjustedNs
	}) {
		name := "switched"
		if i == 1 {
			name = "direct"
		}
		fmt.Printf("  %-9s %8.2f ns\n", name, adj)
	}

	fmt.Println("X5: message-size sweep (paper §1: software share collapses with size)")
	mkSys := func() *node.System {
		return node.NewSystem(config.TX2CX4(noiseLevel(o), seedOf(o), !o.DirectCable), 2)
	}
	for _, pt := range perftest.LatencySizeSweep(mkSys, []int{8, 32, 256, 1024, 4096}, 300, par) {
		fmt.Printf("  %5dB %9.2f ns one-way (software share %.1f%%)\n",
			pt.Bytes, pt.LatencyNs, pt.SoftwarePct)
	}

	fmt.Println("X6: poll window p (paper §4.2 bound p >= gen_completion/LLP_post = 8)")
	for _, res := range perftest.WindowedSweep(mkSys, []int{1, 2, 4, 8, 16, 32}, 2048, par) {
		fmt.Printf("  p=%-3d %9.2f ns/msg\n", res.Window, res.PerMsgNs)
	}

	fmt.Println("Model ablation: minimum poll period p (paper §4.2 lower bound)")
	c := breakband.PaperComponents()
	fmt.Printf("  gen_completion=%.2f ns, LLP_post=%.2f ns -> p >= %d (perftest polls every 16)\n",
		c.GenCompletion(), c.LLPPost, c.MinPollPeriod())

	fmt.Println("Future system (combined §7 optimizations: integrated NIC, fast PIO, -20% software)")
	s, lat := whatif.FutureSystem(c)
	fmt.Printf("  projected speedup %.2f%% -> %.2f ns end-to-end latency\n", s, lat)
}

// bench prints the raw benchmark quartet.
func bench() {
	o := opts()
	pb := breakband.RunPutBw(o, 4000)
	fmt.Printf("put_bw:      %.2f ns/msg (%.0f msg/s), busy posts %d\n", pb.MeanInjNs, pb.MsgRate, pb.BusyPosts)
	al := breakband.RunAmLat(o, 1000)
	fmt.Printf("am_lat:      %.2f ns reported, %.2f ns adjusted\n", al.ReportedNs, al.AdjustedNs)
	mr := breakband.RunMessageRate(o, *flagWindows)
	fmt.Printf("osu_mr:      %.2f ns/msg (%.0f msg/s), busy posts %d\n", mr.MeanInjNs, mr.MsgRate, mr.BusyPosts)
	lt := breakband.RunMPILatency(o, 1000)
	fmt.Printf("osu_latency: %.2f ns one-way\n", lt.OneWayNs)
}
