// Command bbosu mimics the OSU microbenchmarks for the simulated system: the
// message-rate test (osu_mbw_mr style, without the per-window sync, per the
// paper's §6 footnote) and the point-to-point latency test (osu_latency
// style). Their observed values validate the paper's full-stack models.
//
// Usage:
//
//	bbosu [flags] mr|latency
package main

import (
	"flag"
	"fmt"
	"os"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/osu"
)

var (
	flagWindows = flag.Int("windows", 20, "isend windows (mr)")
	flagWindow  = flag.Int("window", 0, "isends per window (default: calibrated config)")
	flagIters   = flag.Int("iters", 1000, "ping-pong iterations (latency)")
	flagSize    = flag.Int("size", 8, "message size in bytes")
	flagNoise   = flag.Bool("noise", false, "enable the stochastic timing model")
	flagSeed    = flag.Uint64("seed", 1, "random seed")
	flagDirect  = flag.Bool("direct", false, "no switch between the NICs")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bbosu [flags] mr|latency")
		flag.PrintDefaults()
		os.Exit(2)
	}
	noise := config.NoiseOff
	if *flagNoise {
		noise = config.NoiseOn
	}
	sys := node.NewSystem(config.TX2CX4(noise, *flagSeed, !*flagDirect), 2)
	defer sys.Shutdown()

	switch flag.Arg(0) {
	case "mr":
		res := osu.MessageRate(sys, osu.Options{Windows: *flagWindows, Window: *flagWindow, MsgSize: *flagSize})
		fmt.Println(res)
		fmt.Printf("paper model (Equation 2): 264.97 ns/msg; paper observed: %.2f ns/msg\n",
			config.TabObsOverallInj)
	case "latency":
		res := osu.Latency(sys, osu.Options{Iters: *flagIters, MsgSize: *flagSize})
		fmt.Println(res)
		fmt.Printf("paper model (§6): %.2f ns; paper observed: %.2f ns\n",
			config.TabE2ELatencyModel, config.TabObsE2ELatency)
	default:
		fmt.Fprintf(os.Stderr, "bbosu: unknown test %q\n", flag.Arg(0))
		os.Exit(2)
	}
}
