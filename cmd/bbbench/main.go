// Command bbbench runs the kernel microbenchmarks (the same bodies `go test
// -bench . ./internal/sim/...` runs, via internal/simbench) and emits
// BENCH_kernel.json so the repository's perf trajectory is recorded run over
// run: events/sec, ns/op, and allocs/op per benchmark, plus the speedup
// against the frozen pre-optimization baseline.
//
// Usage:
//
//	go run ./cmd/bbbench            # writes BENCH_kernel.json
//	go run ./cmd/bbbench -o -       # print to stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"breakband/internal/simbench"
)

// baseline holds the PR-2 pre-optimization numbers (container/heap kernel,
// one goroutine handoff per Sleep), measured with -benchtime 300000x on the
// reference container (Intel Xeon @ 2.10GHz). They are frozen here so every
// later run reports its speedup against the same origin.
var baseline = map[string]result{
	"Schedule":      {NsPerOp: 135.7, AllocsPerOp: 1, BytesPerOp: 48, EventsPerSec: 7367382},
	"SleepHandoff":  {NsPerOp: 483.8, AllocsPerOp: 2, BytesPerOp: 64, EventsPerSec: 2067130},
	"PutBwEndToEnd": {NsPerOp: 15559, AllocsPerOp: 94, BytesPerOp: 6586, EventsPerSec: 2309812},
}

type result struct {
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	Iterations   int64   `json:"iterations,omitempty"`
}

type report struct {
	Tool       string             `json:"tool"`
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	Benchmarks map[string]result  `json:"benchmarks"`
	Baseline   map[string]result  `json:"baseline_pr2_prekernel"`
	Speedup    map[string]float64 `json:"speedup_vs_baseline"`
}

func main() {
	out := flag.String("o", "BENCH_kernel.json", "output path ('-' for stdout)")
	flag.Parse()

	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"Schedule", simbench.Schedule},
		{"SleepHandoff", simbench.SleepHandoff},
		{"PutBwEndToEnd", simbench.PutBwEndToEnd},
		{"WindowedPutBw", simbench.WindowedPutBw},
		{"IncastPutBw", simbench.IncastPutBw},
		{"OversubscribedPutBw", simbench.OversubscribedPutBw},
	}

	rep := report{
		Tool:       "bbbench",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: map[string]result{},
		Baseline:   baseline,
		Speedup:    map[string]float64{},
	}
	for _, b := range benches {
		r := testing.Benchmark(b.fn)
		res := result{
			NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp:  r.AllocsPerOp(),
			BytesPerOp:   r.AllocedBytesPerOp(),
			EventsPerSec: r.Extra["events/sec"],
			Iterations:   int64(r.N),
		}
		rep.Benchmarks[b.name] = res
		vsBase := "no baseline"
		if base, ok := baseline[b.name]; ok && res.NsPerOp > 0 {
			rep.Speedup[b.name] = base.NsPerOp / res.NsPerOp
			vsBase = fmt.Sprintf("%.2fx vs baseline", rep.Speedup[b.name])
		}
		fmt.Fprintf(os.Stderr, "%-14s %10.1f ns/op  %12.0f events/sec  %3d allocs/op  (%s)\n",
			b.name, res.NsPerOp, res.EventsPerSec, res.AllocsPerOp, vsBase)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bbbench:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "wrote", *out)
}
