// Command bbbench runs the kernel microbenchmarks (the same bodies `go test
// -bench . ./internal/sim/...` runs, via internal/simbench) and emits
// BENCH_kernel.json so the repository's perf trajectory is recorded run over
// run: events/sec, ns/op, and allocs/op per benchmark, plus the speedup
// against the frozen pre-optimization baseline.
//
// Usage:
//
//	go run ./cmd/bbbench                          # writes BENCH_kernel.json
//	go run ./cmd/bbbench -o -                     # print to stdout
//	go run ./cmd/bbbench -filter 'HandoffFree.*'  # run a subset
//	go run ./cmd/bbbench -maxregress 0.10         # CI gate: fail on >10%
//	                                              # ns/op regression vs the
//	                                              # frozen baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"testing"

	"breakband/internal/simbench"
)

// baseline holds the PR-2 pre-optimization numbers (container/heap kernel,
// one goroutine handoff per Sleep), measured with -benchtime 300000x on the
// reference container (Intel Xeon @ 2.10GHz). They are frozen here so every
// later run reports its speedup against the same origin.
var baseline = map[string]result{
	"Schedule":      {NsPerOp: 135.7, AllocsPerOp: 1, BytesPerOp: 48, EventsPerSec: 7367382},
	"SleepHandoff":  {NsPerOp: 483.8, AllocsPerOp: 2, BytesPerOp: 64, EventsPerSec: 2067130},
	"PutBwEndToEnd": {NsPerOp: 15559, AllocsPerOp: 94, BytesPerOp: 6586, EventsPerSec: 2309812},
	// HandoffFreeStep replaces the goroutine suspend/resume that
	// SleepHandoff measured: at PR-2 a suspension could only be bought with
	// a handoff, so the SleepHandoff numbers are its baseline and the
	// speedup column shows what the continuation migration saved.
	"HandoffFreeStep": {NsPerOp: 483.8, AllocsPerOp: 2, BytesPerOp: 64, EventsPerSec: 2067130},
}

type result struct {
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	Iterations   int64   `json:"iterations,omitempty"`
}

type report struct {
	Tool       string             `json:"tool"`
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	Benchmarks map[string]result  `json:"benchmarks"`
	Baseline   map[string]result  `json:"baseline_pr2_prekernel"`
	Speedup    map[string]float64 `json:"speedup_vs_baseline"`
}

func main() {
	out := flag.String("o", "BENCH_kernel.json", "output path ('-' for stdout)")
	filter := flag.String("filter", "", "regexp selecting which benchmarks to run (empty = all)")
	maxRegress := flag.Float64("maxregress", 0, "fail (exit 1) when a benchmark's ns/op exceeds its baseline_pr2_prekernel entry by more than this fraction (e.g. 0.10 = 10%); <= 0 disables the gate")
	flag.Parse()

	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"Schedule", simbench.Schedule},
		{"SleepHandoff", simbench.SleepHandoff},
		{"HandoffFreeStep", simbench.HandoffFreeStep},
		{"HandoffFreeCall", simbench.HandoffFreeCall},
		{"PutBwEndToEnd", simbench.PutBwEndToEnd},
		{"WindowedPutBw", simbench.WindowedPutBw},
		{"IncastPutBw", simbench.IncastPutBw},
		{"OversubscribedPutBw", simbench.OversubscribedPutBw},
		{"WorkloadInject", simbench.WorkloadInject},
	}
	var sel *regexp.Regexp
	if *filter != "" {
		var err error
		if sel, err = regexp.Compile(*filter); err != nil {
			fmt.Fprintln(os.Stderr, "bbbench: bad -filter:", err)
			os.Exit(2)
		}
	}

	rep := report{
		Tool:       "bbbench",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: map[string]result{},
		Baseline:   baseline,
		Speedup:    map[string]float64{},
	}
	var regressions []string
	for _, b := range benches {
		if sel != nil && !sel.MatchString(b.name) {
			continue
		}
		r := testing.Benchmark(b.fn)
		res := result{
			NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp:  r.AllocsPerOp(),
			BytesPerOp:   r.AllocedBytesPerOp(),
			EventsPerSec: r.Extra["events/sec"],
			Iterations:   int64(r.N),
		}
		rep.Benchmarks[b.name] = res
		vsBase := "no baseline"
		if base, ok := baseline[b.name]; ok && res.NsPerOp > 0 {
			rep.Speedup[b.name] = base.NsPerOp / res.NsPerOp
			vsBase = fmt.Sprintf("%.2fx vs baseline", rep.Speedup[b.name])
			if *maxRegress > 0 && res.NsPerOp > base.NsPerOp*(1+*maxRegress) {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %.1f ns/op vs baseline %.1f (+%.0f%%, limit +%.0f%%)",
					b.name, res.NsPerOp, base.NsPerOp,
					(res.NsPerOp/base.NsPerOp-1)*100, *maxRegress*100))
			}
		}
		fmt.Fprintf(os.Stderr, "%-19s %10.1f ns/op  %12.0f events/sec  %3d allocs/op  (%s)\n",
			b.name, res.NsPerOp, res.EventsPerSec, res.AllocsPerOp, vsBase)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bbbench:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "wrote", *out)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "bbbench: REGRESSION:", r)
		}
		os.Exit(1)
	}
}
