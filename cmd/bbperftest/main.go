// Command bbperftest mimics ucx_perftest for the simulated system: the
// put_bw injection-rate test and the am_lat ping-pong latency test the paper
// drives its §4 analysis with, plus the N-node congestion scenarios opened
// by the internal/topo topology layer.
//
// Usage:
//
//	bbperftest [flags] put_bw|am_lat|multi|sweep|incast|alltoall|oversub|saturate|lossy|flap|chaos|workload
//
// Examples:
//
//	bbperftest put_bw                 # single-core RDMA-write injection
//	bbperftest -iters 5000 am_lat     # send-receive latency
//	bbperftest -mode doorbell-gather am_lat
//	bbperftest -cores 16 multi        # concurrent injectors, one QP each
//	bbperftest -cores 64 sweep        # multi-core scaling sweep, one fresh
//	                                  # system per point, points fanned out
//	                                  # on the -parallel worker pool
//	bbperftest -nodes 5 -size 4096 incast
//	                                  # 4 senders funnel into node 0 over
//	                                  # one shared switch port
//	bbperftest -topology fattree -nodes 8 alltoall
//	                                  # uniform matrix over a 2-tier Clos
//	bbperftest -nodes 5 -size 4096 -rxbudget 8 oversub
//	                                  # saturating incast against a bounded
//	                                  # receiver: RNR NAKs, sender backoff
//	                                  # and go-back-N replay
//	bbperftest -nodes 5 saturate      # offered load stepped across the
//	                                  # predicted incast bottleneck: knee
//	                                  # point, per-port utilization and
//	                                  # queue depths, per-layer stall shares
//	bbperftest -trace out.json incast # export the run's event trace as
//	                                  # Chrome trace-event JSON (and print
//	                                  # transport recovery counters, which
//	                                  # every command reports)
//	bbperftest lossy                  # sequence-verified stream swept over
//	                                  # the default drop-rate ladder
//	bbperftest -droprate 1e-3 -corruptrate 1e-3 lossy
//	                                  # one lossy point with per-link and
//	                                  # per-QP recovery counters
//	bbperftest -flapdown 100 -flapup 200 flap
//	                                  # fat-tree incast loses a leaf uplink
//	                                  # mid-run: ECMP failover, timeout
//	                                  # replay, restore to steady state
//	bbperftest -seeds 5 chaos         # seeded chaos soak ladder: randomized
//	                                  # wire faults, link flaps, endpoint
//	                                  # crashes and host pauses over a
//	                                  # fat-tree, five invariants per seed
//	bbperftest -workload spec.yaml workload
//	                                  # declarative open-loop traffic: client
//	                                  # cohorts with Poisson/Gamma/Weibull
//	                                  # arrivals, per-cohort goodput, latency
//	                                  # percentiles and stall attribution
//	bbperftest -workload spec.yaml -record t.trace workload
//	                                  # record every offered message; replay
//	                                  # it bit-identically with -replay
//	bbperftest -workload spec.yaml saturate
//	                                  # the spec's first cohort drives the
//	                                  # saturation knee-finder
package main

import (
	"flag"
	"fmt"
	"os"

	"breakband/internal/config"
	"breakband/internal/faults"
	"breakband/internal/node"
	"breakband/internal/perftest"
	"breakband/internal/topo"
	"breakband/internal/trace"
	"breakband/internal/uct"
	"breakband/internal/units"
	"breakband/internal/workload"
)

var (
	flagIters    = flag.Int("iters", 2000, "measured iterations")
	flagWarmup   = flag.Int("warmup", 200, "warmup iterations")
	flagSize     = flag.Int("size", 8, "message size in bytes")
	flagMode     = flag.String("mode", "pio-inline", "descriptor path: pio-inline, doorbell-inline, doorbell-gather")
	flagNoise    = flag.Bool("noise", false, "enable the stochastic timing model")
	flagSeed     = flag.Uint64("seed", 1, "random seed")
	flagDirect   = flag.Bool("direct", false, "no switch between the NICs")
	flagCores    = flag.Int("cores", 4, "injecting cores for the multi test (sweep: largest core count)")
	flagParallel = flag.Int("parallel", 0, "sweep worker pool (0 = GOMAXPROCS, 1 = serial)")
	flagTopology = flag.String("topology", "auto", "fabric shape: auto, backtoback, switch, fattree")
	flagNodes    = flag.Int("nodes", 0, "system size (0 = 2 nodes, or 5 for incast / 8 for alltoall)")
	flagRadix    = flag.Int("radix", 0, "fat-tree switch radix (0 = smallest that fits)")
	flagCredits  = flag.Int("credits", 0, "per-link credit budget in frames (0 = default)")
	flagRxBudget = flag.Int("rxbudget", 0, "NIC receive pend budget in frames; overflow is RNR-NAKed (0 = unbounded, oversub: 8)")
	flagDropRate = flag.Float64("droprate", 0, "lossy: per-frame Bernoulli drop probability (0 with -corruptrate 0 = sweep the default ladder)")
	flagCorrupt  = flag.Float64("corruptrate", 0, "lossy: per-frame Bernoulli corruption probability")
	flagFlapPort = flag.String("flapport", "leaf1.up0", "flap: switch port to take down")
	flagFlapDown = flag.Float64("flapdown", 100, "flap: link-down time in microseconds")
	flagFlapUp   = flag.Float64("flapup", 200, "flap: link-restore time in microseconds")
	flagSeeds    = flag.Int("seeds", 5, "chaos: seed-ladder length (seeds -seed .. -seed+N-1)")
	flagTrace    = flag.String("trace", "", "write the run's event trace as Chrome trace-event JSON to this file (enables tracing)")
	flagWorkload = flag.String("workload", "", "workload: YAML spec file describing cohorts and arrival processes (also drives saturate)")
	flagRecord   = flag.String("record", "", "workload: record every offered message to this trace file")
	flagReplay   = flag.String("replay", "", "workload: replay a recorded trace instead of generating arrivals")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bbperftest [flags] put_bw|am_lat|multi|sweep|incast|alltoall|oversub|saturate|lossy|flap|chaos|workload")
		flag.PrintDefaults()
		os.Exit(2)
	}
	var mode uct.PostMode
	switch *flagMode {
	case "pio-inline":
		mode = uct.PIOInline
	case "doorbell-inline":
		mode = uct.DoorbellInline
	case "doorbell-gather":
		mode = uct.DoorbellGather
	default:
		fmt.Fprintf(os.Stderr, "bbperftest: unknown mode %q\n", *flagMode)
		os.Exit(2)
	}
	noise := config.NoiseOff
	if *flagNoise {
		noise = config.NoiseOn
	}
	kind, err := topo.ParseKind(*flagTopology)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbperftest:", err)
		os.Exit(2)
	}
	test := flag.Arg(0)
	if test == "flap" && kind == topo.Auto {
		// A flap needs redundant paths to fail over across.
		kind = topo.FatTree
	}
	nodes := *flagNodes
	if nodes == 0 {
		switch test {
		case "incast", "oversub", "saturate":
			nodes = 5
		case "flap":
			nodes = 6
		case "alltoall":
			nodes = 8
		default:
			nodes = 2
		}
	}
	rxBudget := *flagRxBudget
	if rxBudget == 0 && test == "oversub" {
		rxBudget = 8
	}
	spec := topo.Spec{Kind: kind, Radix: *flagRadix, Credits: *flagCredits}
	if err := spec.Validate(config.TX2CX4(noise, *flagSeed, !*flagDirect).Fabric, nodes); err != nil {
		fmt.Fprintln(os.Stderr, "bbperftest:", err)
		os.Exit(2)
	}
	mkCfg := func() *config.Config {
		cfg := config.TX2CX4(noise, *flagSeed, !*flagDirect)
		cfg.Topology = spec
		cfg.NICRxBudget = rxBudget
		if *flagTrace != "" || test == "saturate" {
			// The tracer rides the kernel: lifecycle spans and policy
			// decisions from every layer, feeding the -trace export and the
			// saturate command's stall attribution.
			cfg.TraceCapacity = 1 << 20
		}
		cfg.Faults.DropRate = *flagDropRate
		cfg.Faults.CorruptRate = *flagCorrupt
		if test == "flap" {
			cfg.Faults.Flaps = []faults.Flap{{
				Port: *flagFlapPort,
				Down: units.Microseconds(*flagFlapDown),
				Up:   units.Microseconds(*flagFlapUp),
			}}
		}
		return cfg
	}
	mkSys := func() *node.System {
		return node.NewSystem(mkCfg(), nodes)
	}
	opt := perftest.Options{Iters: *flagIters, Warmup: *flagWarmup, MsgSize: *flagSize, Mode: mode}

	switch test {
	case "sweep", "chaos", "saturate":
		if *flagTrace != "" {
			// These commands build many systems internally; there is no
			// single run to export.
			fmt.Fprintf(os.Stderr, "bbperftest: -trace applies to single-system commands; ignored for %s\n", test)
		}
	}

	switch test {
	case "put_bw":
		sys := mkSys()
		defer sys.Shutdown()
		res := perftest.PutBw(sys, opt)
		fmt.Println(res)
		fmt.Printf("paper model (Equation 1): %.2f ns between messages\n", config.TabLLPInjModel)
		report(sys)
	case "am_lat":
		sys := mkSys()
		defer sys.Shutdown()
		res := perftest.AmLat(sys, opt)
		fmt.Println(res)
		s := res.RTTs.Summarize()
		fmt.Printf("round trips: %s\n", s)
		fmt.Printf("paper model (§4.3): %.2f ns one-way\n", config.TabLLPLatencyModel)
		report(sys)
	case "multi":
		sys := mkSys()
		defer sys.Shutdown()
		res := perftest.MultiPutBw(sys, *flagCores, opt)
		fmt.Println(res)
		report(sys)
	case "sweep":
		// Doubling core counts up to -cores; each point is an isolated
		// fresh system, so the sweep fans out on the -parallel pool.
		var coreCounts []int
		for c := 1; c <= *flagCores; c *= 2 {
			coreCounts = append(coreCounts, c)
		}
		for _, res := range perftest.MultiCoreSweep(mkSys, coreCounts, opt, *flagParallel) {
			fmt.Println(res)
		}
	case "incast":
		sys := mkSys()
		defer sys.Shutdown()
		res := perftest.IncastPutBw(sys, 0, opt)
		fmt.Println(res)
		printHotPorts(sys)
		report(sys)
	case "alltoall":
		sys := mkSys()
		defer sys.Shutdown()
		res := perftest.AllToAllPutBw(sys, opt)
		fmt.Println(res)
		printHotPorts(sys)
		report(sys)
	case "oversub":
		if *flagSize == 8 {
			// The receiver PCIe link only becomes the bottleneck once one
			// MWr fills the posted data credit pool; default to the 4 KiB
			// bcopy maximum (an explicit -size 8 is overridden too — the
			// flag package cannot tell it from the default).
			opt.MsgSize = 4096
		}
		sys := mkSys()
		defer sys.Shutdown()
		res := perftest.OversubscribedPutBw(sys, 0, opt)
		fmt.Println(res)
		fmt.Printf("receiver PCIe service model: %.1f ns/msg (%.0f msg/s aggregate ceiling)\n",
			res.ModelCycleNs, 1e9/res.ModelCycleNs)
		printHotPorts(sys)
		report(sys)
	case "lossy":
		if *flagDropRate == 0 && *flagCorrupt == 0 {
			// No explicit rates: sweep the default drop-rate ladder, one
			// fresh system per point.
			for _, res := range perftest.LossySweep(mkCfg(), []float64{0, 1e-4, 1e-3, 1e-2}, opt) {
				fmt.Println(res)
			}
			break
		}
		sys := mkSys()
		defer sys.Shutdown()
		res := perftest.LossyPutBw(sys, opt)
		fmt.Println(res)
		printFaultPorts(sys)
		report(sys)
	case "flap":
		if *flagSize == 8 {
			// Match the incast-family default: 4 KiB puts congest the
			// shared port so the flap's dip and recovery are visible.
			opt.MsgSize = 4096
		}
		sys := mkSys()
		defer sys.Shutdown()
		// nodes-2 symmetric cross-leaf senders: the receiver's leaf-mate
		// stays idle so pre/dip/post rates compare like for like.
		res := perftest.FlapIncastPutBw(sys, nodes-2, opt)
		fmt.Println(res)
		printFaultPorts(sys)
		printHotPorts(sys)
		report(sys)
	case "saturate":
		// Offered load stepped across the predicted bottleneck (1.0 = the
		// analytic saturation point); each step is a fresh system fanned
		// out on the -parallel pool.
		loads := []float64{0.6, 0.8, 1.0, 1.2, 1.4}
		if *flagWorkload != "" {
			// A workload spec drives the knee-finder: its first cohort's
			// source population and mean message size shape the incast.
			wspec, err := workload.LoadSpec(*flagWorkload)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bbperftest:", err)
				os.Exit(2)
			}
			res, err := perftest.WorkloadSaturation(wspec, noise, *flagSeed, loads, opt, *flagParallel)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bbperftest:", err)
				os.Exit(2)
			}
			fmt.Print(res.Format())
			break
		}
		if *flagSize == 8 {
			// Match the incast-family default: 4 KiB puts make the receiver
			// path (wire vs PCIe write cycle) the contended stage.
			opt.MsgSize = 4096
		}
		res := perftest.SaturationSweep(mkSys, 0, loads, opt, *flagParallel)
		fmt.Print(res.Format())
	case "workload":
		if *flagWorkload == "" {
			fmt.Fprintln(os.Stderr, "bbperftest: the workload command needs -workload spec.yaml")
			os.Exit(2)
		}
		wspec, err := workload.LoadSpec(*flagWorkload)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bbperftest:", err)
			os.Exit(2)
		}
		wopt := workload.RunOpt{Record: *flagRecord != ""}
		if *flagReplay != "" {
			tr, err := workload.ReadTraceFile(*flagReplay)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bbperftest:", err)
				os.Exit(2)
			}
			wopt.Replay = tr
		}
		cfg := wspec.BuildConfig(noise, *flagSeed)
		// Trace the run so the report can attribute per-layer stalls
		// (and feed the -trace export).
		cfg.TraceCapacity = 1 << 20
		sys := node.NewSystem(cfg, wspec.Nodes)
		defer sys.Shutdown()
		res, err := workload.Run(wspec, sys, wopt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bbperftest:", err)
			os.Exit(1)
		}
		fmt.Print(perftest.FormatWorkload(res, sys))
		if *flagRecord != "" {
			if err := res.Trace.WriteFile(*flagRecord); err != nil {
				fmt.Fprintln(os.Stderr, "bbperftest:", err)
				os.Exit(1)
			}
			fmt.Printf("trace: recorded %d message(s) to %s\n", len(res.Trace.Recs), *flagRecord)
		}
		printHotPorts(sys)
		report(sys)
	case "chaos":
		// Seeded chaos soak ladder: each seed derives its own randomized
		// fault schedule (wire loss, flaps, endpoint crashes, host pauses)
		// and must hold all five soak invariants. Builds its own fat-tree
		// systems internally, one per seed.
		seeds := make([]uint64, *flagSeeds)
		for i := range seeds {
			seeds[i] = *flagSeed + uint64(i)
		}
		failed := 0
		for _, res := range perftest.ChaosLadder(config.TX2CX4(noise, *flagSeed, !*flagDirect), seeds, perftest.ChaosOptions{}) {
			fmt.Println(res)
			if !res.Passed() {
				failed++
			}
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "bbperftest: chaos: %d of %d seed(s) violated invariants\n", failed, len(seeds))
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "bbperftest: unknown test %q\n", test)
		os.Exit(2)
	}
}

// report appends the uniform observability tail every command shares: the
// per-QP and per-node transport recovery counters, endpoint fault records,
// and the -trace export.
func report(sys *node.System) {
	printRecovery(sys)
	dumpTrace(sys)
}

// printRecovery lists the transport recovery work of the run: per-node
// aggregates with a per-QP breakdown (nodes and QPs with no recovery
// activity are skipped, so healthy runs print nothing), plus the per-node
// crash and pause records when fault injection is armed.
func printRecovery(sys *node.System) {
	header := func() {
		fmt.Println("transport recovery:")
	}
	printed := false
	for _, nd := range sys.Nodes {
		st := nd.NIC.Stats()
		if st.AckTimeouts == 0 && st.SeqNaksRecv == 0 && st.Retransmits == 0 &&
			st.RNRNaksRecv == 0 && st.RNRNaksSent == 0 && st.CrashDiscards == 0 {
			continue
		}
		if !printed {
			header()
			printed = true
		}
		fmt.Printf("  node%-4d %5d ack timeout(s), %5d seq NAK(s), %5d RNR NAK(s) recv / %d sent, %5d retransmit(s), %d crash discard(s)\n",
			nd.ID, st.AckTimeouts, st.SeqNaksRecv, st.RNRNaksRecv, st.RNRNaksSent, st.Retransmits, st.CrashDiscards)
		for _, qp := range nd.NIC.QPs() {
			if qp.AckTimeouts == 0 && qp.SeqNaksRecv == 0 && qp.Retransmits == 0 && qp.RNRNaksRecv == 0 {
				continue
			}
			label := ""
			if qp.Label != "" {
				label = " [" + qp.Label + "]"
			}
			fmt.Printf("    qp%-5d %5d ack timeout(s), %5d seq NAK(s), %5d RNR NAK(s), %5d retransmit(s)%s\n",
				qp.QPN, qp.AckTimeouts, qp.SeqNaksRecv, qp.RNRNaksRecv, qp.Retransmits, label)
		}
	}
	if sys.Faults != nil {
		for _, nf := range sys.Faults.NodeFaultRecords() {
			if nf.Crashes == 0 && nf.Pauses == 0 {
				continue
			}
			if !printed {
				header()
				printed = true
			}
			fmt.Printf("  node%-4d %d crash(es), %d pause(s)\n", nf.Node, nf.Crashes, nf.Pauses)
		}
	}
}

// dumpTrace writes the captured event trace as Chrome trace-event JSON
// (load in chrome://tracing or Perfetto) when -trace is set.
func dumpTrace(sys *node.System) {
	if *flagTrace == "" {
		return
	}
	tr := sys.Tracer()
	if tr == nil {
		fmt.Fprintln(os.Stderr, "bbperftest: -trace set but tracing is disabled")
		return
	}
	f, err := os.Create(*flagTrace)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbperftest:", err)
		os.Exit(1)
	}
	defer f.Close()
	events := tr.Events()
	if err := trace.WriteChrome(f, tr, events); err != nil {
		fmt.Fprintln(os.Stderr, "bbperftest:", err)
		os.Exit(1)
	}
	fmt.Printf("trace: wrote %d event(s) to %s (%d overwritten in the ring)\n",
		len(events), *flagTrace, tr.Overwritten())
}

// printFaultPorts lists the per-link fault counters of the run.
func printFaultPorts(sys *node.System) {
	if sys.Faults == nil {
		return
	}
	fmt.Println("fault injection:")
	for _, l := range sys.Faults.Links() {
		if l.Dropped == 0 && l.Corrupted == 0 && l.Flaps == 0 {
			continue
		}
		fmt.Printf("  %-16s %6d dropped, %6d corrupted, %3d flaps\n",
			l.Name, l.Dropped, l.Corrupted, l.Flaps)
	}
}

// printHotPorts lists the congested egress ports of the run.
func printHotPorts(sys *node.System) {
	fab := sys.Topo()
	fmt.Printf("topology %v:\n", fab.Spec())
	fmt.Print(fab.FormatHotPorts())
}
