// Command bbperftest mimics ucx_perftest for the simulated system: the
// put_bw injection-rate test and the am_lat ping-pong latency test the paper
// drives its §4 analysis with.
//
// Usage:
//
//	bbperftest [flags] put_bw|am_lat|multi|sweep
//
// Examples:
//
//	bbperftest put_bw                 # single-core RDMA-write injection
//	bbperftest -iters 5000 am_lat     # send-receive latency
//	bbperftest -mode doorbell-gather am_lat
//	bbperftest -cores 16 multi        # concurrent injectors, one QP each
//	bbperftest -cores 64 sweep        # multi-core scaling sweep, one fresh
//	                                  # system per point, points fanned out
//	                                  # on the -parallel worker pool
package main

import (
	"flag"
	"fmt"
	"os"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/perftest"
	"breakband/internal/uct"
)

var (
	flagIters    = flag.Int("iters", 2000, "measured iterations")
	flagWarmup   = flag.Int("warmup", 200, "warmup iterations")
	flagSize     = flag.Int("size", 8, "message size in bytes")
	flagMode     = flag.String("mode", "pio-inline", "descriptor path: pio-inline, doorbell-inline, doorbell-gather")
	flagNoise    = flag.Bool("noise", false, "enable the stochastic timing model")
	flagSeed     = flag.Uint64("seed", 1, "random seed")
	flagDirect   = flag.Bool("direct", false, "no switch between the NICs")
	flagCores    = flag.Int("cores", 4, "injecting cores for the multi test (sweep: largest core count)")
	flagParallel = flag.Int("parallel", 0, "sweep worker pool (0 = GOMAXPROCS, 1 = serial)")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bbperftest [flags] put_bw|am_lat|multi|sweep")
		flag.PrintDefaults()
		os.Exit(2)
	}
	var mode uct.PostMode
	switch *flagMode {
	case "pio-inline":
		mode = uct.PIOInline
	case "doorbell-inline":
		mode = uct.DoorbellInline
	case "doorbell-gather":
		mode = uct.DoorbellGather
	default:
		fmt.Fprintf(os.Stderr, "bbperftest: unknown mode %q\n", *flagMode)
		os.Exit(2)
	}
	noise := config.NoiseOff
	if *flagNoise {
		noise = config.NoiseOn
	}
	mkSys := func() *node.System {
		return node.NewSystem(config.TX2CX4(noise, *flagSeed, !*flagDirect), 2)
	}
	opt := perftest.Options{Iters: *flagIters, Warmup: *flagWarmup, MsgSize: *flagSize, Mode: mode}

	switch flag.Arg(0) {
	case "put_bw":
		sys := mkSys()
		defer sys.Shutdown()
		res := perftest.PutBw(sys, opt)
		fmt.Println(res)
		fmt.Printf("paper model (Equation 1): %.2f ns between messages\n", config.TabLLPInjModel)
	case "am_lat":
		sys := mkSys()
		defer sys.Shutdown()
		res := perftest.AmLat(sys, opt)
		fmt.Println(res)
		s := res.RTTs.Summarize()
		fmt.Printf("round trips: %s\n", s)
		fmt.Printf("paper model (§4.3): %.2f ns one-way\n", config.TabLLPLatencyModel)
	case "multi":
		sys := mkSys()
		defer sys.Shutdown()
		res := perftest.MultiPutBw(sys, *flagCores, opt)
		fmt.Println(res)
	case "sweep":
		// Doubling core counts up to -cores; each point is an isolated
		// fresh system, so the sweep fans out on the -parallel pool.
		var coreCounts []int
		for c := 1; c <= *flagCores; c *= 2 {
			coreCounts = append(coreCounts, c)
		}
		for _, res := range perftest.MultiCoreSweep(mkSys, coreCounts, opt, *flagParallel) {
			fmt.Println(res)
		}
	default:
		fmt.Fprintf(os.Stderr, "bbperftest: unknown test %q\n", flag.Arg(0))
		os.Exit(2)
	}
}
