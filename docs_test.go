package breakband

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryPackageHasDoc is the documentation-presence gate (CI runs it as
// part of the suite): every package under internal/ and cmd/ must carry a
// package comment on at least one of its non-test files, so the layer map
// in ARCHITECTURE.md always has a per-package entry point behind it. A
// useful comment is more than a name — require a sentence, not a stub.
func TestEveryPackageHasDoc(t *testing.T) {
	for _, root := range []string{"internal", "cmd"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || !d.IsDir() {
				return err
			}
			checkPackageDoc(t, path)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// The facade package itself is held to the same bar.
	checkPackageDoc(t, ".")
}

// checkPackageDoc fails the test if dir contains Go files but no package
// comment (or only a trivial one).
func checkPackageDoc(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var goFiles []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		goFiles = append(goFiles, filepath.Join(dir, name))
	}
	if len(goFiles) == 0 {
		return // not a package directory
	}
	fset := token.NewFileSet()
	best := 0
	for _, file := range goFiles {
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Errorf("%s: %v", file, err)
			continue
		}
		if f.Doc != nil && len(f.Doc.Text()) > best {
			best = len(f.Doc.Text())
		}
	}
	const minDocLen = 60 // a real sentence, not a restated package name
	if best == 0 {
		t.Errorf("package %s has no package comment; document it (see ARCHITECTURE.md for the expected altitude)", dir)
	} else if best < minDocLen {
		t.Errorf("package %s has only a %d-byte package comment; say what the package is for", dir, best)
	}
}
