// Fine-grained communication: the paper's motivating scenario (§1).
//
// At the limits of strong scaling every core communicates independently with
// small messages. This example puts 1..64 cores on the initiator node, each
// with its own QP, all injecting 8-byte RDMA writes through the shared PCIe
// link and NIC, and reports how aggregate injection scales — including when
// the PCIe link's serialization and credit flow control finally push back.
//
//	go run ./examples/finegrained
package main

import (
	"fmt"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/perftest"
)

func main() {
	fmt.Println("cores | aggregate ns/msg | aggregate msg/s | PCIe credit stalls")
	fmt.Println("------+------------------+-----------------+-------------------")
	var single float64
	for _, cores := range []int{1, 2, 4, 8, 16, 32, 64} {
		cfg := config.TX2CX4(config.NoiseOff, 1, true)
		sys := node.NewSystem(cfg, 2)
		res := perftest.MultiPutBw(sys, cores, perftest.Options{Iters: 1200})
		if cores == 1 {
			single = res.PerMsgNs
		}
		fmt.Printf("%5d | %16.2f | %15.0f | %d\n",
			cores, res.PerMsgNs, res.AggMsgRate, res.LinkBlocked)
		sys.Shutdown()
	}
	fmt.Printf("\nSingle-core injection matches the paper's model (%.2f ns vs 295.73 ns\n", single)
	fmt.Println("modeled); scaling stays near-linear because a single core never exhausts")
	fmt.Println("PCIe posted credits (paper §4.2) and small-message serialization is cheap.")
	fmt.Println("Push far enough and the shared link becomes the bottleneck — the regime")
	fmt.Println("the paper's fine-grained-communication trend points toward.")
}
