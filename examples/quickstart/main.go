// Quickstart: reproduce the paper's headline results in one run.
//
// Builds the calibrated ThunderX2 + ConnectX-4 system, re-runs the
// measurement methodology, validates the injection and latency models
// against the observed benchmarks, and prints the end-to-end latency
// breakdown (the paper's Figure 13).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"breakband"
)

func main() {
	// Deterministic mode: every cost is its calibrated mean, so the
	// numbers below are exactly reproducible.
	res := breakband.Reproduce(breakband.Options{})

	fmt.Println("== Measured component table (Table 1) ==")
	fmt.Println(res.Table1())

	fmt.Println("== Model validation ==")
	fmt.Println(res.RenderValidations())

	fmt.Println("== Where does an 8-byte message spend its time? (Figure 13) ==")
	fmt.Println(res.Figure("fig13"))

	fmt.Println("== High-level split (Figure 15) ==")
	fmt.Println(res.Figure("fig15"))

	c := res.Components()
	fmt.Printf("Insight 2 (paper §6): CPU+I/O account for %.1f%% of the latency;\n",
		100-breakdownPct(c.Network(), c.E2ELatency()))
	fmt.Printf("the network fabric is only %.1f%% — most of the overhead is on the node.\n",
		breakdownPct(c.Network(), c.E2ELatency()))
}

func breakdownPct(part, total float64) float64 { return part / total * 100 }
