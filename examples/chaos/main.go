// Chaos: endpoint failures, error propagation, and stall attribution.
//
// Part 1 runs one seed of the chaos soak: a derived schedule of wire
// loss, link flaps, NIC crashes and host pauses over an 8-node fat-tree
// carrying sequence-verified pair streams. Every request terminates —
// survivors at full delivery, victims with transport errors — and the
// report attributes each node's faults and each pair's outcome.
//
// Part 2 shows what the kernel's quiescence watchdog buys when error
// propagation is NOT wired up: a receiver waiting on a crashed peer with
// no failure detector blocks forever, and Kernel.StallReport names the
// blocked task and the frame it is paused in — stall attribution instead
// of a silent hang.
//
//	go run ./examples/chaos
package main

import (
	"fmt"

	"breakband/internal/config"
	"breakband/internal/faults"
	"breakband/internal/mpi"
	"breakband/internal/node"
	"breakband/internal/perftest"
	"breakband/internal/sim"
	"breakband/internal/uct"
	"breakband/internal/units"
)

func main() {
	// --- Part 1: the seeded soak ---
	const seed = 1
	fmt.Println("== Chaos soak, seed 1 ==")
	res := perftest.ChaosSoak(config.TX2CX4(config.NoiseOff, seed, true), seed, perftest.ChaosOptions{})
	fmt.Println(res)
	fmt.Println("Reproduce this exact run (the schedule is a pure function of the seed):")
	fmt.Println("  go run ./cmd/bbperftest -seed 1 -seeds 1 chaos")
	fmt.Println("  go test -run TestChaosSoakSingle -v ./internal/perftest")
	fmt.Println()

	// --- Part 2: the deliberately-stuck scenario ---
	fmt.Println("== Watchdog stall attribution ==")
	fmt.Println("Node 1 crashes at 5us; node 0 waits for a message from it with no")
	fmt.Println("failure detector and no deadline. The receive can never match and")
	fmt.Println("nothing ever errors node 0's endpoint, so the wait polls forever.")
	fmt.Println("A bounded run plus StallReport turns that into attribution:")
	fmt.Println()

	cfg := config.TX2CX4(config.NoiseOff, seed, true)
	cfg.Bench.SignalPeriod = 1
	cfg.Faults.Crashes = []faults.Crash{{Node: 1, At: units.Microseconds(5)}}
	sys := node.NewSystem(cfg, 2)
	defer sys.Shutdown()
	comm := mpi.NewComm(sys.Nodes[:2], cfg, uct.PIOInline)

	sys.K.SpawnTask("app.recv-from-dead-peer", &stuckRecvFrame{r: comm.Ranks[0]})
	sys.K.RunUntil(units.Microseconds(2000))

	fmt.Print(sys.K.StallReport())
	fmt.Println()
	fmt.Println("The chaos soak never trips this: its heartbeat probe drives the")
	fmt.Println("transport to retry exhaustion, the endpoint error cancels the")
	fmt.Println("receive (mpi.Rank.CheckFailed), and an absolute deadline backstops")
	fmt.Println("the detector itself.")
}

// stuckRecvFrame posts receive credits and blocks on a message from rank 1
// — which is dead. Deliberately never terminates.
type stuckRecvFrame struct {
	pc int
	r  *mpi.Rank
}

func (f *stuckRecvFrame) Step(t *sim.Task) {
	for {
		switch f.pc {
		case 0:
			f.pc = 1
			f.r.StartPreparePostedRecvs(t, 16)
			return
		case 1:
			f.pc = 2
			f.r.StartRecv(t, 1, 1)
			return
		case 2:
			t.Return()
			return
		}
	}
}
