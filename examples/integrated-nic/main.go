// Integrated NIC: model the paper's §7.1 headline optimization.
//
// "The idea of this optimization is that the NIC sits on the same die as
// that of the processor" — eliminating most of the I/O subsystem. Tofu-D on
// post-K improved RDMA-write latency by nearly 400 ns this way. This example
// builds such a system by shrinking the PCIe path and the RC commit latency,
// then compares latency and its breakdown against the baseline.
//
//	go run ./examples/integrated-nic
package main

import (
	"fmt"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/osu"
	"breakband/internal/perftest"
	"breakband/internal/units"
)

func main() {
	baseline := config.TX2CX4(config.NoiseOff, 1, true)

	// The integrated design: the NIC hangs off the network-on-chip. The
	// die-to-die hop replaces the PCIe slot (a few ns), and the
	// coherent-fabric write replaces the RC's long commit path.
	integrated := config.TX2CX4(config.NoiseOff, 1, true)
	integrated.Link.Prop = units.Nanoseconds(10)
	integrated.RC.RCToMemBase = units.Nanoseconds(60)

	run := func(name string, cfg *config.Config) (float64, float64) {
		sysA := node.NewSystem(cfg, 2)
		lat := perftest.AmLat(sysA, perftest.Options{Iters: 600}).AdjustedNs
		sysA.Shutdown()
		sysB := node.NewSystem(cfg, 2)
		e2e := osu.Latency(sysB, osu.Options{Iters: 600}).ReportedNs
		sysB.Shutdown()
		fmt.Printf("%-12s LLP latency %8.2f ns   MPI latency %8.2f ns\n", name, lat, e2e)
		return lat, e2e
	}

	fmt.Println("== SoC-integrated NIC vs PCIe-attached NIC ==")
	baseLat, baseE2E := run("baseline", baseline)
	intLat, intE2E := run("integrated", integrated)

	fmt.Printf("\nImprovement: %.0f ns at the LLP (%.1f%%), %.0f ns end to end (%.1f%%).\n",
		baseLat-intLat, (baseLat-intLat)/baseLat*100,
		baseE2E-intE2E, (baseE2E-intE2E)/baseE2E*100)
	fmt.Println("The paper cites Tofu-D improving RDMA-write latency by nearly 400 ns")
	fmt.Println("through exactly this integration; the simulated gain is the same order.")
}
