// Saturation: find the knee of a fat-tree incast and explain it.
//
// Five senders on a two-tier fat-tree aim 4 KiB RDMA writes at node 0
// while the offered load steps across the predicted bottleneck — the
// slower of the receiver downlink's wire serialization and its PCIe write
// cycle (which gates the final hop's credit loop even without an rx
// budget). The sweep (perftest.SaturationSweep) runs each load step on a
// fresh traced system and reports delivered vs offered rate, the hot
// port's utilization and queue-depth percentiles, and the per-layer stall
// shares from trace attribution. The walkthrough then renders the knee
// curve as an ASCII chart and deep-dives one saturating closed-loop run
// with the full stall-attribution table, whose components must sum
// exactly to the measured latency (the conservation invariant the tests
// pin).
//
//	go run ./examples/saturation
package main

import (
	"fmt"
	"strings"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/perftest"
	"breakband/internal/topo"
)

const (
	nodes   = 6
	msgSize = 4096
)

func mkSys() *node.System {
	cfg := config.TX2CX4(config.NoiseOff, 1, true)
	cfg.Topology = topo.Spec{Kind: topo.FatTree}
	// The tracer rides the kernel; every layer emits lifecycle and
	// decision events into its ring, feeding the stall shares below.
	cfg.TraceCapacity = 1 << 20
	return node.NewSystem(cfg, nodes)
}

func main() {
	opt := perftest.Options{Iters: 400, Warmup: 100, MsgSize: msgSize}
	loads := []float64{0.5, 0.7, 0.9, 1.0, 1.1, 1.3, 1.5}

	fmt.Println("== load sweep across the predicted bottleneck ==")
	res := perftest.SaturationSweep(mkSys, 0, loads, opt, 0)
	fmt.Print(res.Format())
	fmt.Println()

	fmt.Println("== knee curve (delivered rate vs offered load) ==")
	fmt.Print(kneeChart(res, 48))
	fmt.Println()
	fmt.Println("Below the knee the fabric delivers what is offered and latency is")
	fmt.Println("flat. Past it, delivery clamps to the bottleneck's service rate and")
	fmt.Println("every extra offered message becomes switch-port queueing — watch the")
	fmt.Println("queue share and the hot port's p99 depth jump at the starred row.")
	fmt.Println()

	fmt.Println("== deep dive: stall attribution of a saturating closed-loop incast ==")
	sys := mkSys()
	defer sys.Shutdown()
	ires := perftest.IncastPutBw(sys, 0, opt)
	fmt.Println(ires)
	rep := perftest.StallReport(sys)
	fmt.Print(rep.Format())
	fmt.Println()
	fmt.Println("The components are disjoint and sum to the measured latency (zero")
	fmt.Println("residual): the ideal share is the calibrated uncontended path, the")
	fmt.Println("rest is congestion — mostly queueing at the receiver's leaf downlink,")
	fmt.Println("plus the PCIe pend the deferred frame release exposes.")
}

// kneeChart renders delivered (#) against offered (.) message rate per
// load step, both scaled to the largest offered rate.
func kneeChart(r *perftest.SaturationResult, width int) string {
	maxOff := r.Points[len(r.Points)-1].Offered
	var b strings.Builder
	for i := range r.Points {
		p := &r.Points[i]
		del := int(p.Delivered / maxOff * float64(width))
		off := int(p.Offered / maxOff * float64(width))
		mark := " "
		if i == r.KneeIndex {
			mark = "*"
		}
		bar := strings.Repeat("#", del)
		if off > del {
			bar += strings.Repeat(".", off-del)
		}
		fmt.Fprintf(&b, "%s %4.2f |%-*s| %.2f Mmsg/s\n", mark, p.Load, width, bar, p.Delivered/1e6)
	}
	return b.String()
}
