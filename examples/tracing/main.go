// Tracing: the paper's measurement methodology, step by step.
//
// This example drives the internal benchmarks directly and derives the
// hardware component times from the PCIe analyzer trace exactly as §4
// describes: PCIe from TLP->ACK round trips, Network from ping->completion
// deltas, the Switch by differencing topologies, and RC-to-MEM(8B) from the
// Figure-9 pong->ping window.
//
//	go run ./examples/tracing
package main

import (
	"fmt"

	"breakband/internal/analyzer"
	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/pcie"
	"breakband/internal/perftest"
)

func main() {
	cfg := config.TX2CX4(config.NoiseOff, 1, true)

	// --- Step 1: put_bw and the injection overhead (Figures 6 and 7) ---
	sys := node.NewSystem(cfg, 2)
	perftest.PutBw(sys, perftest.Options{Iters: 1000, Warmup: 300, ClearTrace: true})
	tap := sys.Nodes[0].Tap

	fmt.Println("Step 1: the analyzer sits just before the NIC (paper Figure 3).")
	fmt.Println("Downstream 64-byte MWr transactions are the PIO posts; their deltas")
	fmt.Println("are the injection overhead the NIC observes:")
	down := tap.TLPs(pcie.Down, pcie.MWr, 64, 64)
	deltas := analyzer.Deltas(down).Summarize()
	fmt.Printf("  n=%d mean=%.2f ns (paper model: 295.73 ns)\n\n", deltas.N, deltas.Mean)

	// --- Step 2: PCIe from the completion DMA-writes and their ACKs ---
	rt := tap.AckRoundTrips(pcie.Up, pcie.MWr)
	fmt.Println("Step 2: each upstream completion MWr is matched with its ACK DLLP")
	fmt.Printf("from the RC; half the round trip is PCIe:\n  PCIe = %.2f ns (paper: 137.49)\n\n", rt.Mean())
	sys.Shutdown()

	// --- Step 3: Network from am_lat, with and without the switch ---
	netMean := func(useSwitch bool) float64 {
		c := config.TX2CX4(config.NoiseOff, 1, useSwitch)
		s := node.NewSystem(c, 2)
		defer s.Shutdown()
		perftest.AmLat(s, perftest.Options{Iters: 400, Warmup: 50, ClearTrace: true})
		d := s.Nodes[0].Tap.PairDeltas(
			func(r analyzer.Record) bool {
				return r.IsTLP && r.Dir == pcie.Down && r.TLPType == pcie.MWr && r.Payload == 64
			},
			func(r analyzer.Record) bool {
				return r.IsTLP && r.Dir == pcie.Up && r.TLPType == pcie.MWr && r.Payload == 64
			},
		)
		return d.Mean() / 2
	}
	wire := netMean(false)
	network := netMean(true)
	fmt.Println("Step 3: a downstream ping and the next upstream completion bracket two")
	fmt.Println("network traversals; measuring both topologies isolates the switch:")
	fmt.Printf("  Wire = %.2f ns (paper: 274.81), Switch = %.2f ns (paper: 108)\n\n", wire, network-wire)

	// --- Step 4: RC-to-MEM(8B) from the pong->ping window (Figure 9) ---
	sys2 := node.NewSystem(cfg, 2)
	res := perftest.AmLat(sys2, perftest.Options{Iters: 400, Warmup: 50, ClearTrace: true})
	rcq := res.Ep0.QP().RecvCQ.Region
	pongPing := sys2.Nodes[0].Tap.PairDeltas(
		func(r analyzer.Record) bool {
			return r.IsTLP && r.Dir == pcie.Up && r.TLPType == pcie.MWr && rcq.Contains(r.Addr, r.Payload)
		},
		func(r analyzer.Record) bool {
			return r.IsTLP && r.Dir == pcie.Down && r.TLPType == pcie.MWr && r.Payload == 64
		},
	)
	// delta = RC-to-MEM(8B) + 2*PCIe + LLP_prog + LLP_post (Figure 9);
	// plug in the calibrated software means for the last two.
	rcToMem := pongPing.Mean() - 2*rt.Mean() - config.TabLLPProg - config.TabLLPPost
	fmt.Println("Step 4: the inbound-pong to outbound-ping delta (Figure 9) contains")
	fmt.Println("RC-to-MEM + 2 PCIe + LLP_prog + LLP_post; solving:")
	fmt.Printf("  RC-to-MEM(8B) = %.2f ns (paper: 240.96)\n\n", rcToMem)
	sys2.Shutdown()

	fmt.Println("Step 5: a raw trace snippet (paper Figure 6):")
	fmt.Print(sys2.Nodes[0].Tap.FormatTrace(10))
}
