// What-if analysis: "if we optimize component X by Y%, what is the
// corresponding reduction in injection overhead and latency?" (paper §7).
//
// The example sweeps the paper's Figure-17 scenarios analytically and then
// verifies two of them by actually applying the optimization inside the
// simulator and re-running the benchmarks.
//
//	go run ./examples/whatif
package main

import (
	"fmt"

	"breakband"
)

func main() {
	res := breakband.Reproduce(breakband.Options{})

	fmt.Println("== Figure 17: analytical speedup curves ==")
	fmt.Println(res.Figure("fig17a"))
	fmt.Println(res.Figure("fig17c"))

	fmt.Println("== Scenario discussion (§7) ==")
	for _, o := range res.WhatIf() {
		fmt.Printf("- %s [%s], likelihood: %s\n  %s\n", o.Name, o.Target, o.Likelihood, o.Discussion)
	}

	fmt.Println("\n== Verify predictions against the live simulator ==")
	opts := breakband.Options{}
	// The paper's PIO projection: reducing the 64-byte device-memory copy
	// to ~15 ns (84% reduction) should improve injection by >25% and
	// latency by >5%.
	for _, check := range []breakband.WhatIfCheck{
		breakband.SimulateOptimization(opts, breakband.CompPIO, breakband.Injection, 84),
		breakband.SimulateOptimization(opts, breakband.CompPIO, breakband.Latency, 84),
		// The SoC-integrated NIC at a modest 50% I/O reduction: >15%.
		breakband.SimulateOptimization(opts, breakband.CompIO, breakband.Latency, 50),
		// GenZ-style 30 ns switch (~70% reduction): ~5.45%.
		breakband.SimulateOptimization(opts, breakband.CompSwitch, breakband.Latency, 70),
	} {
		fmt.Println("  " + check.String())
	}
}
