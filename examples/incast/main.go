// Incast: watch a shared switch port congest.
//
// Four senders funnel 4 KiB RDMA writes into node 0 over a single-switch
// topology (internal/topo). Every flow crosses the receiver's downlink
// port, whose store-and-forward serialization queue is the hotspot: this
// example taps the fabric's queue-depth trace (per-port depth over time),
// renders the hotspot's occupancy as an ASCII strip chart, and prints the
// per-port congestion counters — queueing at the shared port, credit
// backpressure at the sender egresses.
//
//	go run ./examples/incast
package main

import (
	"fmt"
	"strings"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/perftest"
	"breakband/internal/topo"
	"breakband/internal/units"
)

// sample is one queue-depth observation of the watched port.
type sample struct {
	at    units.Time
	depth int
}

func main() {
	const (
		senders = 4
		msgSize = 4096
		hotPort = "sw0.port0" // the receiver's downlink
	)
	cfg := config.TX2CX4(config.NoiseOff, 1, true)
	cfg.Topology = topo.Spec{Kind: topo.SingleSwitch}
	sys := node.NewSystem(cfg, senders+1)
	defer sys.Shutdown()

	var trace []sample
	sys.Topo().OnDepth = func(at units.Time, port string, depth int) {
		if port == hotPort {
			trace = append(trace, sample{at, depth})
		}
	}

	res := perftest.IncastPutBw(sys, senders, perftest.Options{
		Iters: 400, Warmup: 250, MsgSize: msgSize,
	})
	fmt.Println(res)
	fmt.Println()

	fmt.Printf("== %s queue depth over time ==\n", hotPort)
	fmt.Println(depthChart(trace, 64, 12))
	fmt.Println("The ramp is the senders' send queues filling; the plateau is the")
	fmt.Println("steady state. For 4 KiB writes the receiver's PCIe credit round")
	fmt.Printf("trip (%.2fns per MWr) is slower than the port's %v wire\n",
		perftest.PCIeWriteCycle(cfg, msgSize).Ns(), cfg.Fabric.SerTime(msgSize))
	fmt.Println("serialization, so the receiving NIC holds delivered frames until")
	fmt.Println("their host writes issue, final-hop credits stay pinned, and the")
	fmt.Println("queue sits at the credit ceiling while backpressure paces every")
	fmt.Println("sender at the PCIe drain rate.")
	fmt.Println()

	fmt.Println("== congested ports ==")
	fmt.Print(sys.Topo().FormatHotPorts())
}

// depthChart renders the depth samples as a cols x rows strip chart: each
// column is a time bucket showing the bucket's maximum queue depth.
func depthChart(trace []sample, cols, rows int) string {
	if len(trace) == 0 {
		return "(no samples)"
	}
	t0, t1 := trace[0].at, trace[len(trace)-1].at
	span := t1 - t0
	if span <= 0 {
		span = 1
	}
	depth := make([]int, cols)
	maxDepth := 0
	for _, s := range trace {
		c := int(int64(s.at-t0) * int64(cols-1) / int64(span))
		if s.depth > depth[c] {
			depth[c] = s.depth
		}
		if s.depth > maxDepth {
			maxDepth = s.depth
		}
	}
	if maxDepth == 0 {
		maxDepth = 1
	}
	var b strings.Builder
	for r := rows; r >= 1; r-- {
		threshold := maxDepth * r / rows
		fmt.Fprintf(&b, "%4d |", threshold)
		for _, d := range depth {
			if d >= threshold && threshold > 0 {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "     +%s\n", strings.Repeat("-", cols))
	fmt.Fprintf(&b, "      %-*s%s\n", cols-len(t1.String()), t0.String(), t1.String())
	return b.String()
}
