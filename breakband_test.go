package breakband

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// repro caches one deterministic reproduction for the package tests (the
// tests are parallel, hence the once).
var (
	reproOnce sync.Once
	repro     *Results
)

func reproduced(t *testing.T) *Results {
	t.Helper()
	reproOnce.Do(func() {
		repro = Reproduce(Options{Samples: 150, Windows: 10})
	})
	return repro
}

func TestReproduceValidations(t *testing.T) {
	t.Parallel()
	res := reproduced(t)
	vals := res.Validations()
	if len(vals) != 4 {
		t.Fatalf("validations = %d", len(vals))
	}
	for _, v := range vals {
		if !v.Within(5) {
			t.Errorf("%s: %.2f%% model error", v.Name, v.ErrPct)
		}
	}
	out := res.RenderValidations()
	for _, want := range []string{"LLP injection", "E2E latency", "paper observed"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered validations missing %q", want)
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	t.Parallel()
	res := reproduced(t)
	out := res.Table1()
	for _, want := range []string{
		"Message descriptor setup", "PIO copy (64 bytes)", "RC-to-MEM(8B)",
		"27.78", "94.25", "240.96", "Successful MPI_Wait for MPI_Irecv in UCP",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestFigures(t *testing.T) {
	t.Parallel()
	res := reproduced(t)
	for _, id := range []string{
		"fig4", "fig7", "fig8", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17a", "fig17b", "fig17c", "fig17d",
	} {
		out := res.Figure(id)
		if out == "" || strings.Contains(out, "unknown figure") {
			t.Errorf("figure %s did not render", id)
		}
	}
	if !strings.Contains(res.Figure("bogus"), "unknown figure") {
		t.Error("bogus figure id accepted")
	}
}

func TestFig13MatchesPaperShares(t *testing.T) {
	t.Parallel()
	res := reproduced(t)
	out := res.Figure("fig13")
	// The measured table reproduces the paper's Figure-13 shares.
	for _, want := range []string{"HLP_post 1.9", "Wire 19.8", "HLP_rx_prog 16.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig13 missing %q:\n%s", want, out)
		}
	}
}

func TestBreakdownsMap(t *testing.T) {
	t.Parallel()
	res := reproduced(t)
	bd := res.Breakdowns()
	for _, key := range []string{"fig4", "fig8", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16"} {
		if len(bd[key]) == 0 {
			t.Errorf("breakdowns missing %s", key)
		}
	}
}

func TestWhatIfScenarios(t *testing.T) {
	t.Parallel()
	res := reproduced(t)
	if len(res.WhatIf()) != 5 {
		t.Errorf("scenarios = %d", len(res.WhatIf()))
	}
}

func TestPaperComponents(t *testing.T) {
	c := PaperComponents()
	if math.Abs(c.E2ELatency()-1387.02) > 0.005 {
		t.Errorf("paper E2E = %v", c.E2ELatency())
	}
}

func TestRunBenchmarks(t *testing.T) {
	t.Parallel()
	opts := Options{}
	pb := RunPutBw(opts, 500)
	if math.Abs(pb.MeanInjNs-295.73)/295.73 > 0.05 {
		t.Errorf("put_bw = %.2f", pb.MeanInjNs)
	}
	if pb.InjDist.N < 499 {
		t.Errorf("injection samples = %d", pb.InjDist.N)
	}
	al := RunAmLat(opts, 300)
	if math.Abs(al.AdjustedNs-1135.8)/1135.8 > 0.05 {
		t.Errorf("am_lat = %.2f", al.AdjustedNs)
	}
	mr := RunMessageRate(opts, 8)
	if math.Abs(mr.MeanInjNs-264.97)/264.97 > 0.05 {
		t.Errorf("message rate = %.2f", mr.MeanInjNs)
	}
	lt := RunMPILatency(opts, 300)
	if math.Abs(lt.OneWayNs-1387.02)/1387.02 > 0.05 {
		t.Errorf("MPI latency = %.2f", lt.OneWayNs)
	}
}

func TestSimulateOptimizationAgreesWithModel(t *testing.T) {
	t.Parallel()
	opts := Options{}
	checks := []struct {
		comp Component
		m    Metric
		r    int
	}{
		{CompPIO, Injection, 84},
		{CompIO, Latency, 50},
		{CompSwitch, Latency, 70},
		{CompWire, Latency, 50},
	}
	for _, c := range checks {
		res := SimulateOptimization(opts, c.comp, c.m, c.r)
		if res.SimulatedPct <= 0 {
			t.Errorf("%s: no simulated speedup", c.comp)
			continue
		}
		// §7: the simulator reproduces the analytical linear speedups.
		diff := math.Abs(res.PredictedPct - res.SimulatedPct)
		if diff > 1.0 {
			t.Errorf("%s -%d%% %s: predicted %.2f%% vs simulated %.2f%%",
				c.comp, c.r, c.m, res.PredictedPct, res.SimulatedPct)
		}
	}
}

func TestSimulateOptimizationValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("reduction 0 accepted")
		}
	}()
	SimulateOptimization(Options{}, CompPIO, Latency, 0)
}

func TestComponentsList(t *testing.T) {
	if len(Components()) != 9 {
		t.Errorf("components = %d", len(Components()))
	}
}

func TestApplyOptimizationCoversAllComponents(t *testing.T) {
	// Every advertised component must be applicable and must actually
	// lower the corresponding configured cost.
	for _, comp := range Components() {
		base := Options{}.configMaker()()
		mod := Options{}.configMaker()()
		applyOptimization(mod, comp, 0.5)
		changed := base.SW.PIOCopy.Mean() != mod.SW.PIOCopy.Mean() ||
			base.SW.MDSetup.Mean() != mod.SW.MDSetup.Mean() ||
			base.SW.MpiIsend.Mean() != mod.SW.MpiIsend.Mean() ||
			base.SW.UcpRecvCB.Mean() != mod.SW.UcpRecvCB.Mean() ||
			base.Link.Prop != mod.Link.Prop ||
			base.RC.RCToMemBase != mod.RC.RCToMemBase ||
			base.Fabric.WireProp != mod.Fabric.WireProp ||
			base.Fabric.SwitchLatency != mod.Fabric.SwitchLatency
		if !changed {
			t.Errorf("component %s: applyOptimization changed nothing", comp)
		}
	}
}

func TestComponentNsMatchesPaperShares(t *testing.T) {
	// The prediction table behind SimulateOptimization must agree with
	// the Figure-17 component definitions.
	c := PaperComponents()
	if got := componentNs(c, CompIO, Latency); math.Abs(got-515.94) > 0.01 {
		t.Errorf("integrated-NIC T_X = %v, want 515.94", got)
	}
	if got := componentNs(c, CompHLPPost, Injection); math.Abs(got-26.56) > 0.01 {
		t.Errorf("HLP_post T_X = %v", got)
	}
	// Off-node components do not enter the injection model (the CPU time
	// pipelines over PCIe, paper §4.2).
	for _, comp := range []Component{CompWire, CompSwitch, CompPCIe, CompRCToMem, CompIO} {
		if componentNs(c, comp, Injection) != 0 {
			t.Errorf("%s should not contribute to the injection model", comp)
		}
	}
}

func TestMetricString(t *testing.T) {
	if Latency.String() != "latency" || Injection.String() != "injection" {
		t.Error("metric strings")
	}
}

func TestNoisySeedsReproducible(t *testing.T) {
	t.Parallel()
	a := RunPutBw(Options{Noise: true, Seed: 9}, 300)
	b := RunPutBw(Options{Noise: true, Seed: 9}, 300)
	if a.MeanInjNs != b.MeanInjNs {
		t.Error("same seed diverged")
	}
	c := RunPutBw(Options{Noise: true, Seed: 10}, 300)
	if c.MeanInjNs == a.MeanInjNs {
		t.Error("different seeds identical")
	}
}

func TestDirectCableLowersLatency(t *testing.T) {
	t.Parallel()
	switched := RunAmLat(Options{}, 200).AdjustedNs
	direct := RunAmLat(Options{DirectCable: true}, 200).AdjustedNs
	// The switch adds its forwarding latency once per one-way trip.
	if math.Abs((switched-direct)-108) > 2 {
		t.Errorf("switch delta = %.2f ns, want ~108", switched-direct)
	}
}
