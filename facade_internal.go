package breakband

import (
	"breakband/internal/analyzer"
	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/pcie"
	"breakband/internal/stats"
	"breakband/internal/units"
)

// Thin aliases keeping internal identifiers out of the exported files'
// logic while staying in one module.
const (
	pcieDown = pcie.Down
	pcieUp   = pcie.Up
	pcieMWr  = pcie.MWr
)

// record aliases the analyzer's trace record for tests.
type record = analyzer.Record

func deltasSample(recs []analyzer.Record) *stats.Sample {
	return analyzer.Deltas(recs)
}

// scaleTime applies a (1-r) factor to a fixed hardware latency.
func scaleTime(t units.Time, r float64) units.Time {
	return units.Time(float64(t) * (1 - r))
}

// systemFromConfig builds a two-node system from an explicit config (used by
// the simulation-backed what-if checks).
func systemFromConfig(cfg *config.Config) *node.System {
	return node.NewSystem(cfg, 2)
}
