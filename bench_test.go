package breakband

import (
	"testing"

	"breakband/internal/config"
	"breakband/internal/core/breakdown"
	"breakband/internal/core/whatif"
	"breakband/internal/measure"
	"breakband/internal/node"
	"breakband/internal/osu"
	"breakband/internal/perftest"
	"breakband/internal/uct"
)

// This file regenerates every table and figure of the paper's evaluation as
// testing.B benchmarks (DESIGN.md §4 maps each artifact to its bench).
// Figures derived purely from the measured component table reuse one shared
// measurement campaign; benches that exercise live workloads run them under
// b.N control. Custom b.ReportMetric units carry the quantities the paper
// reports (ns per message, model error, percentage speedups).

var benchCampaign *measure.Result

func campaignForBench(b *testing.B) *measure.Result {
	b.Helper()
	if benchCampaign == nil {
		mk := func() *config.Config { return config.TX2CX4(config.NoiseOff, 1, true) }
		benchCampaign = measure.Run(mk, measure.Opts{Samples: 200, Windows: 10})
	}
	return benchCampaign
}

func mkSys() *node.System {
	return node.NewSystem(config.TX2CX4(config.NoiseOff, 1, true), 2)
}

// BenchmarkTable1Components regenerates the measured component table
// (Table 1) and reports a few headline rows as metrics.
func BenchmarkTable1Components(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mk := func() *config.Config { return config.TX2CX4(config.NoiseOff, 1, true) }
		res := measure.Run(mk, measure.Opts{Samples: 100, Windows: 5})
		b.ReportMetric(res.Components.LLPPost, "llp_post_ns")
		b.ReportMetric(res.Components.PCIe, "pcie_ns")
		b.ReportMetric(res.Components.RCToMem8, "rc_to_mem_ns")
	}
}

// BenchmarkFig4LLPPost regenerates the LLP_post stage breakdown.
func BenchmarkFig4LLPPost(b *testing.B) {
	c := campaignForBench(b).Components
	for i := 0; i < b.N; i++ {
		bd := breakdown.Fig4LLPPost(c)
		b.ReportMetric(bd.Part("PIO copy").Pct, "pio_pct")
		b.ReportMetric(bd.TotalNs, "llp_post_ns")
	}
}

// BenchmarkFig6Trace captures the downstream PCIe trace of put_bw.
func BenchmarkFig6Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := mkSys()
		perftest.PutBw(sys, perftest.Options{Iters: 256, Warmup: 300, ClearTrace: true})
		recs := sys.Nodes[0].Tap.Records()
		b.ReportMetric(float64(len(recs)), "trace_records")
		sys.Shutdown()
	}
}

// BenchmarkFig7InjectionDist regenerates the observed injection-overhead
// distribution from analyzer deltas.
func BenchmarkFig7InjectionDist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunPutBw(Options{}, 2000)
		b.ReportMetric(res.InjDist.Mean, "mean_ns")
		b.ReportMetric(res.InjDist.Median, "median_ns")
		b.ReportMetric(res.InjDist.Std, "std_ns")
	}
}

// BenchmarkFig8InjectionBreakdown regenerates the LLP injection breakdown.
func BenchmarkFig8InjectionBreakdown(b *testing.B) {
	c := campaignForBench(b).Components
	for i := 0; i < b.N; i++ {
		bd := breakdown.Fig8Injection(c)
		b.ReportMetric(bd.Part("LLP_post").Pct, "llp_post_pct")
		b.ReportMetric(bd.TotalNs, "inj_ns")
	}
}

// BenchmarkInjectionValidation reruns the §4.2 model-vs-observed check
// (paper: 295.73 modeled vs 282.33 observed, within 5%).
func BenchmarkInjectionValidation(b *testing.B) {
	res := campaignForBench(b)
	for i := 0; i < b.N; i++ {
		v := res.Validations()[0]
		b.ReportMetric(v.ModeledNs, "modeled_ns")
		b.ReportMetric(v.ObservedNs, "observed_ns")
		b.ReportMetric(v.ErrPct, "err_pct")
	}
}

// BenchmarkFig10LatencyBreakdown regenerates the LLP latency breakdown.
func BenchmarkFig10LatencyBreakdown(b *testing.B) {
	c := campaignForBench(b).Components
	for i := 0; i < b.N; i++ {
		bd := breakdown.Fig10Latency(c)
		b.ReportMetric(bd.Part("Wire").Pct, "wire_pct")
		b.ReportMetric(bd.Part("RC-to-MEM(8B)").Pct, "rc_to_mem_pct")
	}
}

// BenchmarkLatencyValidation reruns the §4.3 check (paper: 1135.8 modeled vs
// 1190.25 observed).
func BenchmarkLatencyValidation(b *testing.B) {
	res := campaignForBench(b)
	for i := 0; i < b.N; i++ {
		v := res.Validations()[1]
		b.ReportMetric(v.ModeledNs, "modeled_ns")
		b.ReportMetric(v.ObservedNs, "observed_ns")
		b.ReportMetric(v.ErrPct, "err_pct")
	}
}

// BenchmarkFig11HLP regenerates the MPICH/UCP split of MPI_Isend and the
// receive-side MPI_Wait.
func BenchmarkFig11HLP(b *testing.B) {
	c := campaignForBench(b).Components
	for i := 0; i < b.N; i++ {
		bars := breakdown.Fig11HLP(c)
		b.ReportMetric(bars[0].Part("MPICH").Pct, "isend_mpich_pct")
		b.ReportMetric(bars[1].Part("MPICH").Pct, "wait_mpich_pct")
	}
}

// BenchmarkFig12OverallInjection regenerates the overall injection
// breakdown.
func BenchmarkFig12OverallInjection(b *testing.B) {
	c := campaignForBench(b).Components
	for i := 0; i < b.N; i++ {
		bd := breakdown.Fig12OverallInjection(c)
		b.ReportMetric(bd.Part("Post").Pct, "post_pct")
		b.ReportMetric(bd.TotalNs, "inj_ns")
	}
}

// BenchmarkOverallInjectionValidation reruns the §6 check (paper: 264.97
// modeled vs 263.91 observed, within 1%).
func BenchmarkOverallInjectionValidation(b *testing.B) {
	res := campaignForBench(b)
	for i := 0; i < b.N; i++ {
		v := res.Validations()[2]
		b.ReportMetric(v.ModeledNs, "modeled_ns")
		b.ReportMetric(v.ObservedNs, "observed_ns")
		b.ReportMetric(v.ErrPct, "err_pct")
	}
}

// BenchmarkFig13E2ELatency regenerates the end-to-end latency breakdown.
func BenchmarkFig13E2ELatency(b *testing.B) {
	c := campaignForBench(b).Components
	for i := 0; i < b.N; i++ {
		bd := breakdown.Fig13E2ELatency(c)
		b.ReportMetric(bd.TotalNs, "e2e_ns")
		b.ReportMetric(bd.Part("HLP_rx_prog").Pct, "hlp_rx_prog_pct")
	}
}

// BenchmarkE2ELatencyValidation reruns the §6 check (paper: 1387.02 modeled
// vs 1336 observed, within 4%).
func BenchmarkE2ELatencyValidation(b *testing.B) {
	res := campaignForBench(b)
	for i := 0; i < b.N; i++ {
		v := res.Validations()[3]
		b.ReportMetric(v.ModeledNs, "modeled_ns")
		b.ReportMetric(v.ObservedNs, "observed_ns")
		b.ReportMetric(v.ErrPct, "err_pct")
	}
}

// BenchmarkFig14HLPvsLLP regenerates the protocol-level splits.
func BenchmarkFig14HLPvsLLP(b *testing.B) {
	c := campaignForBench(b).Components
	for i := 0; i < b.N; i++ {
		bars := breakdown.Fig14HLPvsLLP(c)
		b.ReportMetric(bars[0].Part("LLP").Pct, "init_llp_pct")
		b.ReportMetric(bars[2].Part("HLP").Pct, "rx_hlp_pct")
	}
}

// BenchmarkFig15HighLevel regenerates the CPU / I/O / Network split.
func BenchmarkFig15HighLevel(b *testing.B) {
	c := campaignForBench(b).Components
	for i := 0; i < b.N; i++ {
		bars := breakdown.Fig15HighLevel(c)
		b.ReportMetric(bars[0].Part("Network").Pct, "network_pct")
		b.ReportMetric(bars[0].Part("I/O").Pct, "io_pct")
		b.ReportMetric(bars[0].Part("CPU").Pct, "cpu_pct")
	}
}

// BenchmarkFig16OnNode regenerates the initiator/target on-node split.
func BenchmarkFig16OnNode(b *testing.B) {
	c := campaignForBench(b).Components
	for i := 0; i < b.N; i++ {
		bars := breakdown.Fig16OnNode(c)
		b.ReportMetric(bars[0].Part("Target").Pct, "target_pct")
	}
}

// BenchmarkFig17aCPUInjection sweeps CPU reductions against injection.
func BenchmarkFig17aCPUInjection(b *testing.B) {
	c := campaignForBench(b).Components
	for i := 0; i < b.N; i++ {
		series := whatif.Fig17aCPUInjection(c)
		b.ReportMetric(series[1].At(0.90), "llp_90_speedup_pct")
		b.ReportMetric(series[0].At(0.20), "hlp_20_speedup_pct")
	}
}

// BenchmarkFig17bCPULatency sweeps CPU reductions against latency.
func BenchmarkFig17bCPULatency(b *testing.B) {
	c := campaignForBench(b).Components
	for i := 0; i < b.N; i++ {
		series := whatif.Fig17bCPULatency(c)
		b.ReportMetric(series[4].At(0.84), "pio_84_speedup_pct")
	}
}

// BenchmarkFig17cIOLatency sweeps I/O reductions against latency.
func BenchmarkFig17cIOLatency(b *testing.B) {
	c := campaignForBench(b).Components
	for i := 0; i < b.N; i++ {
		series := whatif.Fig17cIOLatency(c)
		b.ReportMetric(series[0].At(0.50), "integrated_nic_50_pct")
	}
}

// BenchmarkFig17dNetworkLatency sweeps network reductions against latency.
func BenchmarkFig17dNetworkLatency(b *testing.B) {
	c := campaignForBench(b).Components
	for i := 0; i < b.N; i++ {
		series := whatif.Fig17dNetworkLatency(c)
		b.ReportMetric(series[1].At(0.70), "switch_70_pct")
	}
}

// BenchmarkAblationPostModes compares the PIO+inline fast path against the
// DoorBell+DMA paths (DESIGN.md X1; exercises MRd/CplD).
func BenchmarkAblationPostModes(b *testing.B) {
	for _, mode := range []uct.PostMode{uct.PIOInline, uct.DoorbellInline, uct.DoorbellGather} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := mkSys()
				res := perftest.AmLat(sys, perftest.Options{Iters: 300, Mode: mode})
				b.ReportMetric(res.AdjustedNs, "latency_ns")
				sys.Shutdown()
			}
		})
	}
}

// BenchmarkAblationUnsignaled sweeps the unsignaled-completion period
// (DESIGN.md X2).
func BenchmarkAblationUnsignaled(b *testing.B) {
	for _, c := range []int{1, 16, 64} {
		b.Run("c="+itoa(c), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := config.TX2CX4(config.NoiseOff, 1, true)
				cfg.Bench.SignalPeriod = c
				sys := node.NewSystem(cfg, 2)
				res := osu.MessageRate(sys, osu.Options{Windows: 8})
				b.ReportMetric(res.MeanInjNs, "ns_per_msg")
				sys.Shutdown()
			}
		})
	}
}

// BenchmarkAblationMultiCore scales concurrent injecting cores (DESIGN.md
// X3; exercises PCIe credit flow control and link serialization).
func BenchmarkAblationMultiCore(b *testing.B) {
	for _, cores := range []int{1, 8, 32} {
		b.Run("cores="+itoa(cores), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := mkSys()
				res := perftest.MultiPutBw(sys, cores, perftest.Options{Iters: 800})
				b.ReportMetric(res.PerMsgNs, "agg_ns_per_msg")
				b.ReportMetric(float64(res.LinkBlocked), "credit_stalls")
				sys.Shutdown()
			}
		})
	}
}

// BenchmarkAblationSwitch compares switched and direct topologies
// (DESIGN.md X4).
func BenchmarkAblationSwitch(b *testing.B) {
	for _, direct := range []bool{false, true} {
		name := "switched"
		if direct {
			name = "direct"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := node.NewSystem(config.TX2CX4(config.NoiseOff, 1, !direct), 2)
				res := perftest.AmLat(sys, perftest.Options{Iters: 300})
				b.ReportMetric(res.AdjustedNs, "latency_ns")
				sys.Shutdown()
			}
		})
	}
}

// BenchmarkAblationSizeSweep measures latency across message sizes
// (DESIGN.md X5: the paper's §1 claim that the software share collapses as
// messages grow).
func BenchmarkAblationSizeSweep(b *testing.B) {
	for _, size := range []int{8, 256, 4096} {
		b.Run("size="+itoa(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts := perftest.LatencySizeSweep(mkSys, []int{size}, 200, 1)
				b.ReportMetric(pts[0].LatencyNs, "latency_ns")
				b.ReportMetric(pts[0].SoftwarePct, "software_pct")
			}
		})
	}
}

// BenchmarkAblationPollWindow sweeps the post window against the §4.2 bound
// p >= gen_completion / LLP_post (DESIGN.md X6).
func BenchmarkAblationPollWindow(b *testing.B) {
	for _, w := range []int{1, 8, 32} {
		b.Run("p="+itoa(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := mkSys()
				res := perftest.WindowedPutBw(sys, w, 1024)
				b.ReportMetric(res.PerMsgNs, "ns_per_msg")
				sys.Shutdown()
			}
		})
	}
}

// BenchmarkSimCheckWhatIf verifies a Figure-17 prediction against the live
// simulator per iteration (paper §7's simulator-agreement claim).
func BenchmarkSimCheckWhatIf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		chk := SimulateOptimization(Options{}, CompIO, Latency, 50)
		b.ReportMetric(chk.PredictedPct, "predicted_pct")
		b.ReportMetric(chk.SimulatedPct, "simulated_pct")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
