module breakband

go 1.22
