package breakband_test

import (
	"fmt"

	"breakband"
	"breakband/internal/perftest"
)

// Example is the facade quickstart: run the full measurement campaign and
// render the paper's headline artifacts. (No expected output is pinned —
// a campaign takes seconds; see examples/quickstart for the runnable
// program and the golden fixture for the bit-exact numbers.)
func Example() {
	res := breakband.Reproduce(breakband.Options{})
	fmt.Println(res.Table1())            // the Table-1 reproduction
	fmt.Println(res.RenderValidations()) // models vs observed benchmarks
	fmt.Println(res.Figure("fig13"))     // end-to-end latency breakdown
}

// Example_benchmarks runs the §4 microbenchmarks directly, without the
// full campaign: put_bw reports the injection interval, am_lat the
// half-round-trip latency.
func Example_benchmarks() {
	opts := breakband.Options{Seed: 1}
	pb := breakband.RunPutBw(opts, 2000)
	al := breakband.RunAmLat(opts, 2000)
	fmt.Printf("put_bw: %.2f ns between messages\n", pb.MeanInjNs)
	fmt.Printf("am_lat: %.2f ns one-way (adjusted)\n", al.AdjustedNs)
}

// Example_congestion builds an N-node system over the topology layer and
// drives the oversubscribed incast: four senders saturate one receiver
// whose NIC buffers at most eight frames, so overload shows up as RNR
// NAKs and sender backoff instead of unbounded buffering. ARCHITECTURE.md
// catalogs every scenario.
func Example_congestion() {
	opts := breakband.Options{Seed: 1}
	sys := opts.NewNodeSystem(5, 8) // 5 nodes, rx budget 8
	defer sys.Shutdown()
	res := perftest.OversubscribedPutBw(sys, 4, perftest.Options{
		Iters: 400, Warmup: 250, MsgSize: 4096,
	})
	fmt.Println(res)
	fmt.Printf("receiver PCIe service model: %.1f ns/msg\n", res.ModelCycleNs)
}

// Example_noise turns on the stochastic timing model (lognormal software
// jitter plus rare preemption spikes), reproducing the paper's Figure-7
// style injection-overhead distribution at a fixed seed.
func Example_noise() {
	pb := breakband.RunPutBw(breakband.Options{Noise: true, Seed: 7}, 5000)
	fmt.Printf("mean %.1f ns, spread %v\n", pb.MeanInjNs, pb.InjDist)
}
