package breakband

import (
	"breakband/internal/osu"
	"breakband/internal/perftest"
	"breakband/internal/stats"
)

// PutBwSummary reports the UCX-perftest-style RDMA-write injection test.
type PutBwSummary struct {
	// MeanInjNs is the mean time between injected messages (inverse
	// message rate).
	MeanInjNs float64
	// MsgRate is messages per second.
	MsgRate float64
	// BusyPosts counts failed posts against the full transmit queue.
	BusyPosts uint64
	// InjDist summarizes the PCIe-analyzer-observed injection deltas
	// (the paper's Figure 7 distribution); InjSample holds the raw
	// per-message deltas for histogramming.
	InjDist   stats.Summary
	InjSample *stats.Sample
}

// RunPutBw runs the put_bw benchmark on a fresh system.
func RunPutBw(opts Options, iters int) PutBwSummary {
	sys := opts.NewSystem()
	defer sys.Shutdown()
	res := perftest.PutBw(sys, perftest.Options{Iters: iters, ClearTrace: true})
	down := sys.Nodes[0].Tap.TLPs(pcieDown, pcieMWr, 64, 64)
	sample := deltasSample(down)
	return PutBwSummary{
		MeanInjNs: res.MeanInjNs,
		MsgRate:   res.MsgRate,
		BusyPosts: res.Stats.BusyPosts,
		InjDist:   sample.Summarize(),
		InjSample: sample,
	}
}

// AmLatSummary reports the UCX-perftest-style ping-pong latency test.
type AmLatSummary struct {
	// ReportedNs is half the round trip as the benchmark reports it.
	ReportedNs float64
	// AdjustedNs deducts half the measurement update (§4.3).
	AdjustedNs float64
	// RTT summarizes per-iteration round trips.
	RTT stats.Summary
}

// RunAmLat runs the am_lat benchmark on a fresh system.
func RunAmLat(opts Options, iters int) AmLatSummary {
	sys := opts.NewSystem()
	defer sys.Shutdown()
	res := perftest.AmLat(sys, perftest.Options{Iters: iters})
	return AmLatSummary{
		ReportedNs: res.ReportedNs,
		AdjustedNs: res.AdjustedNs,
		RTT:        res.RTTs.Summarize(),
	}
}

// MessageRateSummary reports the OSU-style MPI message-rate test.
type MessageRateSummary struct {
	MeanInjNs float64
	MsgRate   float64
	BusyPosts uint64
	Messages  int
}

// RunMessageRate runs the MPI message-rate benchmark on a fresh system.
func RunMessageRate(opts Options, windows int) MessageRateSummary {
	sys := opts.NewSystem()
	defer sys.Shutdown()
	res := osu.MessageRate(sys, osu.Options{Windows: windows})
	return MessageRateSummary{
		MeanInjNs: res.MeanInjNs,
		MsgRate:   res.MsgRate,
		BusyPosts: res.BusyPosts,
		Messages:  res.Messages,
	}
}

// MPILatencySummary reports the OSU-style MPI ping-pong latency test.
type MPILatencySummary struct {
	// OneWayNs is half the mean round trip.
	OneWayNs float64
	RTT      stats.Summary
}

// RunMPILatency runs the MPI latency benchmark on a fresh system.
func RunMPILatency(opts Options, iters int) MPILatencySummary {
	sys := opts.NewSystem()
	defer sys.Shutdown()
	res := osu.Latency(sys, osu.Options{Iters: iters})
	return MPILatencySummary{OneWayNs: res.ReportedNs, RTT: res.RTTs.Summarize()}
}
